// The live-ingestion correctness harness: proves the incremental path
// (ingest deltas → off-path rebuild → snapshot swap) is indistinguishable
// from a one-shot batch build, and that snapshot lifetimes hold up under
// concurrent swap/reclaim. Four clusters:
//
//  1. StreamSessionizer == batch Sessionize on sorted streams, including the
//     exact max_gap_seconds boundary, the lexical-overlap extension window,
//     and the flush-on-swap tail semantics.
//  2. The headline equivalence property: ingesting a log in arbitrary chunk
//     splits then swapping serves *bitwise-identical* suggestion lists
//     (queries, scores, order) to an engine built once on the concatenated
//     log — across kRaw/kCfIqf weightings, serving thread counts, and with
//     personalization on.
//  3. Cache/backpressure/scheduling semantics: generation-keyed cache
//     invalidation, all-or-nothing delta-buffer backpressure, and the
//     rebuild threshold.
//  4. A snapshot-lifetime stress: readers keep serving out of generation g
//     while a writer swaps in g+1, g+2, ... and old generations are
//     reclaimed. Every response must be consistent with exactly one
//     generation that was plausibly current during the request. This file is
//     part of the TSAN/ASan suites run_benches.sh re-runs.

#include <algorithm>
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/index_manager.h"
#include "core/pqsda_engine.h"
#include "log/sessionizer.h"
#include "log/stream_sessionizer.h"
#include "obs/metrics.h"
#include "synthetic/generator.h"

namespace pqsda {
namespace {

// ----------------------------------------------- stream sessionizer ----

std::vector<QueryLogRecord> SessionizerLog() {
  // Per user: in-gap extensions, a boundary-exact gap, a lexical-overlap
  // reformulation past the gap, and clean splits.
  std::vector<QueryLogRecord> records = {
      {1, "sun", "a.com", 1000},
      {1, "sun java", "b.com", 1000 + 100},
      {1, "java download", "c.com", 1000 + 100 + 30 * 60},  // exact boundary
      {1, "totally new need", "d.com", 50'000},
      {2, "solar system", "e.com", 2000},
      // Past max_gap but within extended_gap and sharing "solar".
      {2, "solar energy", "f.com", 2000 + 31 * 60},
      // Past extended_gap even with overlap: must split.
      {2, "solar panels", "g.com", 2000 + 31 * 60 + 61 * 60},
      {3, "uk news", "h.com", 3000},
      // Past max_gap, inside extended window, but no shared term: split.
      {3, "weather", "i.com", 3000 + 31 * 60},
  };
  SortByUserAndTime(records);
  return records;
}

void ExpectSameSessions(const std::vector<Session>& batch,
                        const std::vector<Session>& stream) {
  ASSERT_EQ(batch.size(), stream.size());
  for (size_t s = 0; s < batch.size(); ++s) {
    EXPECT_EQ(batch[s].id, stream[s].id) << "session " << s;
    EXPECT_EQ(batch[s].user_id, stream[s].user_id) << "session " << s;
    EXPECT_EQ(batch[s].record_indices, stream[s].record_indices)
        << "session " << s;
  }
}

TEST(StreamSessionizerTest, MatchesBatchOnSortedLogWithBoundaryCases) {
  const auto records = SessionizerLog();
  SessionizerOptions options;
  const auto batch = Sessionize(records, options);

  StreamSessionizer stream(options);
  for (size_t i = 0; i < records.size(); ++i) stream.Push(records[i], i);
  ExpectSameSessions(batch, stream.Sessions());

  // Sanity-pin the boundary semantics themselves (not just stream==batch):
  // user 1's exact-gap record extends, user 2's overlap reformulation
  // extends, user 3's no-overlap gap splits.
  EXPECT_EQ(batch[0].record_indices.size(), 3u);  // user 1 first session
  EXPECT_EQ(batch[2].record_indices.size(), 2u);  // user 2 overlap extension
  EXPECT_EQ(batch[4].record_indices.size(), 1u);  // user 3 split
}

TEST(StreamSessionizerTest, MatchesBatchWithLexicalOverlapDisabled) {
  const auto records = SessionizerLog();
  SessionizerOptions options;
  options.use_lexical_overlap = false;
  const auto batch = Sessionize(records, options);
  StreamSessionizer stream(options);
  for (size_t i = 0; i < records.size(); ++i) stream.Push(records[i], i);
  ExpectSameSessions(batch, stream.Sessions());
  // Without the extension rule, user 2's reformulation now splits.
  EXPECT_GT(batch.size(), Sessionize(records, SessionizerOptions{}).size());
}

TEST(StreamSessionizerTest, InterleavedStreamKeepsEveryUsersTailOpen) {
  // Live arrival order interleaves users; the per-user keying must keep both
  // tails open where the back()-only batch scan would split user 1.
  StreamSessionizer stream;
  stream.Push({1, "sun", "a.com", 100}, 0);
  stream.Push({2, "solar system", "b.com", 110}, 1);
  stream.Push({1, "sun java", "c.com", 120}, 2);
  stream.Push({2, "solar energy", "d.com", 130}, 3);
  EXPECT_EQ(stream.num_sessions(), 2u);
  EXPECT_EQ(stream.open_tails(), 2u);
  EXPECT_EQ(stream.Sessions()[0].record_indices,
            (std::vector<size_t>{0, 2}));
  EXPECT_EQ(stream.Sessions()[1].record_indices,
            (std::vector<size_t>{1, 3}));
}

TEST(StreamSessionizerTest, FlushOnSwapClosesTailsWithoutLosingSessions) {
  StreamSessionizer stream;
  stream.Push({1, "sun", "a.com", 100}, 0);
  stream.Push({1, "sun java", "b.com", 150}, 1);
  auto tail = stream.TailContext(1);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].first, "sun");
  EXPECT_EQ(tail[1].first, "sun java");

  stream.FlushAll();  // the swap hook
  EXPECT_EQ(stream.open_tails(), 0u);
  EXPECT_TRUE(stream.TailContext(1).empty());
  EXPECT_EQ(stream.num_sessions(), 1u);  // the session itself survives

  // The user's next record — however close in time — opens a fresh session:
  // its predecessors live in the immutable index now.
  stream.Push({1, "java download", "c.com", 160}, 2);
  EXPECT_EQ(stream.num_sessions(), 2u);
  EXPECT_EQ(stream.TailContext(1).size(), 1u);
}

TEST(StreamSessionizerTest, FlushUserClosesOnlyThatTail) {
  StreamSessionizer stream;
  stream.Push({1, "sun", "a.com", 100}, 0);
  stream.Push({2, "uk news", "b.com", 100}, 1);
  stream.FlushUser(1);
  EXPECT_TRUE(stream.TailContext(1).empty());
  EXPECT_EQ(stream.TailContext(2).size(), 1u);
  EXPECT_EQ(stream.open_tails(), 1u);
  stream.FlushUser(7);  // no tail: no-op
  EXPECT_EQ(stream.open_tails(), 1u);
}

TEST(StreamSessionizerTest, MatchesBatchOnSyntheticLog) {
  GeneratorConfig config;
  config.num_users = 25;
  config.seed = 11;
  auto data = GenerateLog(config);
  SortByUserAndTime(data.records);
  SessionizerOptions options;
  const auto batch = Sessionize(data.records, options);
  StreamSessionizer stream(options);
  for (size_t i = 0; i < data.records.size(); ++i) {
    stream.Push(data.records[i], i);
  }
  ExpectSameSessions(batch, stream.Sessions());
}

// --------------------------------- incremental-vs-batch equivalence ----

// A small but structured log: enough co-session/co-click signal for the
// walk + solve + selection pipeline to produce multi-entry lists.
std::vector<QueryLogRecord> EquivalenceLog() {
  GeneratorConfig config;
  config.num_users = 20;
  config.sessions_per_user_min = 6;
  config.sessions_per_user_max = 12;
  config.seed = 23;
  return GenerateLog(config).records;
}

PqsdaEngineConfig EquivalenceConfig(EdgeWeighting weighting,
                                    bool personalize) {
  PqsdaEngineConfig config;
  config.weighting = weighting;
  config.personalize = personalize;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 8;
  config.upm.hyper_rounds = 1;
  return config;
}

// Fixed probe requests drawn from the log (plus one personalized form each).
std::vector<SuggestionRequest> ProbeRequests(
    const std::vector<QueryLogRecord>& records) {
  std::vector<SuggestionRequest> requests;
  std::vector<std::string> seen;
  int64_t max_ts = 0;
  for (const auto& r : records) max_ts = std::max(max_ts, r.timestamp);
  for (const auto& r : records) {
    if (std::find(seen.begin(), seen.end(), r.query) != seen.end()) continue;
    seen.push_back(r.query);
    SuggestionRequest request;
    request.query = r.query;
    request.timestamp = max_ts + 100;
    requests.push_back(request);
    SuggestionRequest personalized = request;
    personalized.user = r.user_id;
    requests.push_back(std::move(personalized));
    if (requests.size() >= 12) break;
  }
  return requests;
}

// Serves every probe and returns the outcomes; NotFound is recorded as an
// empty list (it must then be NotFound on the other engine too).
std::vector<std::vector<Suggestion>> ServeProbes(
    const PqsdaEngine& engine, const std::vector<SuggestionRequest>& probes,
    ThreadPool* pool = nullptr) {
  std::vector<std::vector<Suggestion>> lists;
  auto results = engine.SuggestBatch(probes, 10, pool);
  for (auto& result : results) {
    if (result.ok()) {
      lists.push_back(std::move(result).value());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kNotFound)
          << result.status().ToString();
      lists.emplace_back();
    }
  }
  return lists;
}

// Bitwise equality: query strings, double scores (no tolerance), order.
void ExpectIdenticalLists(const std::vector<std::vector<Suggestion>>& a,
                          const std::vector<std::vector<Suggestion>>& b,
                          const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << label << " probe " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].query, b[i][j].query)
          << label << " probe " << i << " rank " << j;
      // EXPECT_EQ on doubles is exact — bitwise, not within-epsilon.
      EXPECT_EQ(a[i][j].score, b[i][j].score)
          << label << " probe " << i << " rank " << j;
    }
  }
}

// Splits `tail` into chunks at positions drawn from `rng`.
std::vector<std::vector<QueryLogRecord>> RandomChunks(
    std::vector<QueryLogRecord> tail, std::mt19937& rng) {
  std::vector<std::vector<QueryLogRecord>> chunks;
  size_t pos = 0;
  while (pos < tail.size()) {
    std::uniform_int_distribution<size_t> dist(1, tail.size() - pos);
    const size_t n = dist(rng);
    chunks.emplace_back(tail.begin() + pos, tail.begin() + pos + n);
    pos += n;
  }
  return chunks;
}

// The property itself, parameterized over weighting / personalization /
// split seed: build on a prefix, ingest the rest chunk by chunk with a swap
// per chunk, and the final generation must serve bit-for-bit what a one-shot
// build over the whole log serves.
void RunEquivalenceProperty(EdgeWeighting weighting, bool personalize,
                            uint32_t split_seed) {
  const auto all_records = EquivalenceLog();
  const auto config = EquivalenceConfig(weighting, personalize);
  auto batch_engine = PqsdaEngine::Build(all_records, config);
  ASSERT_TRUE(batch_engine.ok()) << batch_engine.status().ToString();
  const auto probes = ProbeRequests(all_records);
  const auto expected = ServeProbes(**batch_engine, probes);

  const size_t prefix = all_records.size() / 2;
  std::vector<QueryLogRecord> base(all_records.begin(),
                                   all_records.begin() + prefix);
  std::vector<QueryLogRecord> tail(all_records.begin() + prefix,
                                   all_records.end());
  auto live_engine = PqsdaEngine::Build(std::move(base), config);
  ASSERT_TRUE(live_engine.ok()) << live_engine.status().ToString();

  std::mt19937 rng(split_seed);
  IndexManager& index = (*live_engine)->index_manager();
  uint64_t generation = 0;
  for (auto& chunk : RandomChunks(std::move(tail), rng)) {
    ASSERT_TRUE(index.IngestBatch(std::move(chunk)).ok());
    ASSERT_TRUE(index.RebuildNow().ok());
    index.WaitForRebuilds();  // drain any threshold-scheduled async pass
    ASSERT_TRUE(index.RebuildNow().ok());
    EXPECT_GT(index.generation(), generation);
    generation = index.generation();
    EXPECT_EQ(index.delta_depth(), 0u);
  }
  ASSERT_EQ((*live_engine)->records().size(), all_records.size());

  const std::string label =
      std::string(weighting == EdgeWeighting::kCfIqf ? "cfiqf" : "raw") +
      (personalize ? "+upm" : "") + " seed=" + std::to_string(split_seed);
  ExpectIdenticalLists(expected, ServeProbes(**live_engine, probes), label);

  // The equivalence must be independent of serving parallelism too.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    ExpectIdenticalLists(expected, ServeProbes(**live_engine, probes, &pool),
                         label + " threads=" + std::to_string(threads));
  }
}

TEST(IngestEquivalenceTest, ChunkedIngestMatchesBatchCfIqf) {
  RunEquivalenceProperty(EdgeWeighting::kCfIqf, /*personalize=*/false, 101);
}

TEST(IngestEquivalenceTest, ChunkedIngestMatchesBatchRaw) {
  RunEquivalenceProperty(EdgeWeighting::kRaw, /*personalize=*/false, 202);
}

TEST(IngestEquivalenceTest, ChunkedIngestMatchesBatchAcrossSplits) {
  for (uint32_t seed : {7u, 19u}) {
    RunEquivalenceProperty(EdgeWeighting::kCfIqf, /*personalize=*/false,
                           seed);
  }
}

TEST(IngestEquivalenceTest, ChunkedIngestMatchesBatchWithPersonalization) {
  // The UPM is retrained from scratch each rebuild with a fixed seed, so the
  // personalized rerank is part of the bitwise contract too.
  RunEquivalenceProperty(EdgeWeighting::kCfIqf, /*personalize=*/true, 303);
}

TEST(IngestEquivalenceTest, OneByOneIngestReachesThresholdAndMatches) {
  // Drive the *threshold* path (async scheduling) instead of RebuildNow:
  // every rebuild_min_records-th record triggers an off-path rebuild.
  const auto all_records = EquivalenceLog();
  auto config = EquivalenceConfig(EdgeWeighting::kCfIqf, false);
  config.ingest.rebuild_min_records = 32;
  auto batch_engine = PqsdaEngine::Build(all_records, config);
  ASSERT_TRUE(batch_engine.ok());
  const auto probes = ProbeRequests(all_records);
  const auto expected = ServeProbes(**batch_engine, probes);

  const size_t prefix = all_records.size() - 150;
  auto live_engine = PqsdaEngine::Build(
      std::vector<QueryLogRecord>(all_records.begin(),
                                  all_records.begin() + prefix),
      config);
  ASSERT_TRUE(live_engine.ok());
  for (size_t i = prefix; i < all_records.size(); ++i) {
    ASSERT_TRUE((*live_engine)->Ingest(all_records[i]).ok());
  }
  IndexManager& index = (*live_engine)->index_manager();
  index.WaitForRebuilds();
  ASSERT_TRUE(index.RebuildNow().ok());  // absorb the sub-threshold remainder
  // Coalescing: crossings that happen while a rebuild runs are absorbed by
  // its follow-up drain pass, so the rebuild count is >= 1 but typically far
  // below the 150/32 threshold crossings.
  EXPECT_GE(index.rebuilds_total(), 1u);
  ExpectIdenticalLists(expected, ServeProbes(**live_engine, probes),
                       "one-by-one threshold path");
}

// ------------------------------ cache, backpressure, scheduling ----

std::vector<QueryLogRecord> ServingLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 150},
      {1, "java download", "www.java.com", 200},
      {4, "sun java", "www.java.com", 100},
      {4, "java download", "java.sun.com", 130},
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 160},
      {2, "solar energy", "www.energy.gov", 220},
      {5, "solar system", "www.nasa.gov", 90},
      {5, "solar energy", "www.nasa.gov", 140},
      {3, "sun", "www.thesun.co.uk", 100},
      {3, "sun daily uk", "www.thesun.co.uk", 150},
      {6, "sun daily uk", "www.thesun.co.uk", 110},
      {6, "uk news", "www.thesun.co.uk", 170},
  };
}

SuggestionRequest ProbeRequest(const std::string& query) {
  SuggestionRequest request;
  request.query = query;
  request.timestamp = 400;
  return request;
}

TEST(IngestCacheTest, SwapTurnsPreSwapHitIntoPostSwapMiss) {
  PqsdaEngineConfig config;
  config.personalize = false;
  config.cache_capacity = 64;
  auto engine = PqsdaEngine::Build(ServingLog(), config);
  ASSERT_TRUE(engine.ok());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& hits = reg.GetCounter("pqsda.cache.hits_total");
  obs::Counter& misses = reg.GetCounter("pqsda.cache.misses_total");

  const auto request = ProbeRequest("sun");
  const uint64_t hits0 = hits.Value();
  const uint64_t misses0 = misses.Value();

  auto first = (*engine)->Suggest(request, 5);  // miss, fills gen-0 entry
  ASSERT_TRUE(first.ok());
  auto second = (*engine)->Suggest(request, 5);  // hit on the gen-0 entry
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(hits.Value(), hits0 + 1);
  EXPECT_EQ(misses.Value(), misses0 + 1);
  EXPECT_EQ(*first, *second);

  // Ingest fresh signal and swap: the same request must now MISS (the gen-0
  // entry is unreachable under the gen-1 key) and recompute against the new
  // index — no explicit cache flush anywhere.
  IndexManager& index = (*engine)->index_manager();
  ASSERT_TRUE(index
                  .IngestBatch({{7, "sun", "www.nasa.gov", 500},
                                {7, "sun spots", "www.nasa.gov", 520},
                                {8, "sun spots", "www.nasa.gov", 510}})
                  .ok());
  ASSERT_TRUE(index.RebuildNow().ok());
  EXPECT_EQ((*engine)->generation(), 1u);

  auto third = (*engine)->Suggest(request, 5);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(hits.Value(), hits0 + 1);     // no stale hit
  EXPECT_EQ(misses.Value(), misses0 + 2);  // recomputed
  // And the recomputed list is cached under the new generation.
  auto fourth = (*engine)->Suggest(request, 5);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(hits.Value(), hits0 + 2);
  EXPECT_EQ(*third, *fourth);
}

TEST(IngestBackpressureTest, OverfullBatchRejectedWholeAndRetryable) {
  PqsdaEngineConfig config;
  config.personalize = false;
  config.ingest.max_delta_records = 4;
  config.ingest.rebuild_min_records = 100;  // never auto-schedule
  auto built = BuildIndexSnapshot(ServingLog(), config, 0);
  ASSERT_TRUE(built.ok());
  IndexManager index(std::move(built).value(), config);

  obs::Counter& dropped =
      obs::MetricsRegistry::Default().GetCounter("pqsda.ingest.dropped_total");
  const uint64_t dropped0 = dropped.Value();

  std::vector<QueryLogRecord> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back({9, "q" + std::to_string(i), "x.com", 1000 + i});
  }
  // 5 > 4: rejected whole — not truncated to the 4 that would fit.
  Status status = index.IngestBatch(batch);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(index.delta_depth(), 0u);
  EXPECT_EQ(dropped.Value(), dropped0 + 5);

  batch.pop_back();
  ASSERT_TRUE(index.IngestBatch(batch).ok());  // 4 fits exactly
  EXPECT_EQ(index.delta_depth(), 4u);
  EXPECT_EQ(index.Ingest({9, "one more", "x.com", 2000}).code(),
            StatusCode::kUnavailable);

  // A rebuild drains the buffer; the rejected work is retryable verbatim.
  ASSERT_TRUE(index.RebuildNow().ok());
  EXPECT_EQ(index.delta_depth(), 0u);
  EXPECT_TRUE(index.Ingest({9, "one more", "x.com", 2000}).ok());
  EXPECT_EQ(index.ingested_total(), 5u);
}

TEST(IngestSchedulingTest, BelowThresholdBuffersAboveThresholdRebuilds) {
  ThreadPool rebuild_pool(2);
  PqsdaEngineConfig config;
  config.personalize = false;
  config.ingest.rebuild_min_records = 3;
  config.ingest.rebuild_pool = &rebuild_pool;
  auto built = BuildIndexSnapshot(ServingLog(), config, 0);
  ASSERT_TRUE(built.ok());
  IndexManager index(std::move(built).value(), config);

  ASSERT_TRUE(index.Ingest({9, "qa", "x.com", 1000}).ok());
  ASSERT_TRUE(index.Ingest({9, "qb", "x.com", 1010}).ok());
  index.WaitForRebuilds();
  EXPECT_EQ(index.rebuilds_total(), 0u);  // below threshold: buffered only
  EXPECT_EQ(index.generation(), 0u);
  EXPECT_EQ(index.delta_depth(), 2u);

  ASSERT_TRUE(index.Ingest({9, "qc", "x.com", 1020}).ok());  // hits 3
  index.WaitForRebuilds();
  EXPECT_GE(index.rebuilds_total(), 1u);
  EXPECT_GE(index.generation(), 1u);
  EXPECT_EQ(index.delta_depth(), 0u);
  EXPECT_EQ(index.Acquire()->records.size(), ServingLog().size() + 3);

  // RebuildNow on an empty buffer is an OK no-op that swaps nothing.
  const uint64_t generation = index.generation();
  ASSERT_TRUE(index.RebuildNow().ok());
  EXPECT_EQ(index.generation(), generation);
}

// ---------------------------------------- snapshot lifetime stress ----

// Readers keep serving while a writer swaps generations in and old ones are
// reclaimed. Each response must be bitwise-identical to the precomputed
// expected list of SOME generation that was plausibly current during the
// request ([generation observed before, generation observed after]) — i.e.
// every request is served by exactly one coherent snapshot, never a torn
// mix, and never freed memory (the TSAN/ASan suites re-run this test).
TEST(IngestLifetimeStressTest, InFlightRequestsPinTheirGeneration) {
  const auto all_records = EquivalenceLog();
  PqsdaEngineConfig config;
  config.personalize = false;
  config.cache_capacity = 0;  // every request walks the full pipeline

  constexpr size_t kGenerations = 4;
  const size_t prefix = all_records.size() - 160;
  const size_t chunk_size = 160 / kGenerations;

  // Expected list per generation, from independent one-shot builds.
  const auto probe = ProbeRequests(all_records)[0];
  std::vector<std::vector<Suggestion>> expected;
  for (size_t g = 0; g <= kGenerations; ++g) {
    std::vector<QueryLogRecord> slice(
        all_records.begin(),
        all_records.begin() + prefix + g * chunk_size);
    auto engine = PqsdaEngine::Build(std::move(slice), config);
    ASSERT_TRUE(engine.ok());
    auto suggestions = (*engine)->Suggest(probe, 10);
    ASSERT_TRUE(suggestions.ok()) << suggestions.status().ToString();
    expected.push_back(std::move(suggestions).value());
  }

  auto live = PqsdaEngine::Build(
      std::vector<QueryLogRecord>(all_records.begin(),
                                  all_records.begin() + prefix),
      config);
  ASSERT_TRUE(live.ok());
  PqsdaEngine& engine = **live;

  std::atomic<bool> done{false};
  std::atomic<size_t> mismatches{0};
  auto reader = [&] {
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t gen_before = engine.generation();
      auto suggestions = engine.Suggest(probe, 10);
      const uint64_t gen_after = engine.generation();
      if (!suggestions.ok()) {
        mismatches.fetch_add(1);
        continue;
      }
      bool matched = false;
      for (uint64_t g = gen_before; g <= gen_after && g < expected.size();
           ++g) {
        if (*suggestions == expected[g]) {
          matched = true;
          break;
        }
      }
      if (!matched) mismatches.fetch_add(1);
    }
  };
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) readers.emplace_back(reader);

  // Writer: ingest + synchronous swap per generation. Acquire() before and
  // after proves old generations are actually reclaimed (use-after-free
  // would be caught by the sanitizer suites, torn reads by the matching).
  IndexManager& index = engine.index_manager();
  for (size_t g = 0; g < kGenerations; ++g) {
    std::vector<QueryLogRecord> chunk(
        all_records.begin() + prefix + g * chunk_size,
        all_records.begin() + prefix + (g + 1) * chunk_size);
    ASSERT_TRUE(index.IngestBatch(std::move(chunk)).ok());
    ASSERT_TRUE(index.RebuildNow().ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(engine.generation(), kGenerations);
  EXPECT_EQ(engine.records().size(), all_records.size());
  // The final generation serves the batch-identical list.
  auto final_list = engine.Suggest(probe, 10);
  ASSERT_TRUE(final_list.ok());
  EXPECT_EQ(*final_list, expected[kGenerations]);
}

}  // namespace
}  // namespace pqsda
