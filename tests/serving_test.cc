// Tests for the concurrent serving layer: the ThreadPool, the reusable
// solver/hitting-time workspaces, PqsdaEngine::SuggestBatch and the sharded
// LRU SuggestionCache — plus regression tests for the request-path crash and
// stats bugs. This file is also the concurrency suite run_benches.sh
// re-runs under ThreadSanitizer.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/pqsda_engine.h"
#include "log/sessionizer.h"
#include "obs/metrics.h"
#include "solver/linear_solvers.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/pqsda_diversifier.h"
#include "suggest/suggestion_cache.h"

namespace pqsda {
namespace {

// ------------------------------------------------------- ThreadPool ----

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1537);
  pool.ParallelFor(0, hits.size(), 1, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(0, 1, 64, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < 16 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 16);
}

// A ParallelFor issued from inside a pool worker must complete (inline)
// rather than deadlock on a fully occupied pool.
TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 4, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(0, 100, 1, [&](size_t b, size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 400);
}

// ------------------------------------- JacobiSolveParallel workspace ----

CsrMatrix ServingTestSystem() {
  return CsrMatrix::FromTriplets(
      4, 4, {{0, 0, 5.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 5.0},
             {1, 2, -2.0}, {2, 1, -2.0}, {2, 2, 6.0}, {2, 3, -1.0},
             {3, 2, -1.0}, {3, 3, 4.0}});
}

TEST(ServingSolverTest, ParallelJacobiMatchesSerialAcrossThreadCounts) {
  auto a = ServingTestSystem();
  std::vector<double> b = {1.0, -2.0, 3.0, 0.5};
  std::vector<double> xs;
  auto rs = JacobiSolve(a, b, xs, SolverOptions{});
  ASSERT_TRUE(rs.converged);

  ThreadPool pool(3);
  SolverWorkspace workspace;  // reused across every thread count below
  for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{16}}) {
    std::vector<double> xp;
    auto rp = JacobiSolveParallel(a, b, xp, SolverOptions{}, threads, &pool,
                                  &workspace);
    EXPECT_TRUE(rp.converged) << "threads=" << threads;
    EXPECT_EQ(rs.iterations, rp.iterations) << "threads=" << threads;
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_DOUBLE_EQ(xs[i], xp[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ServingSolverTest, WorkspaceReuseAcrossDifferentSystems) {
  ThreadPool pool(2);
  SolverWorkspace workspace;
  auto a1 = ServingTestSystem();
  std::vector<double> b1 = {1.0, -2.0, 3.0, 0.5};
  std::vector<double> x1;
  JacobiSolveParallel(a1, b1, x1, SolverOptions{}, 0, &pool, &workspace);

  // A smaller system next: the workspace must shrink-to-fit correctly.
  auto a2 = CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0}, {1, 1, 4.0}});
  std::vector<double> b2 = {2.0, 8.0};
  std::vector<double> x2;
  auto r2 = JacobiSolveParallel(a2, b2, x2, SolverOptions{}, 0, &pool,
                                &workspace);
  EXPECT_TRUE(r2.converged);
  EXPECT_NEAR(x2[0], 1.0, 1e-9);
  EXPECT_NEAR(x2[1], 2.0, 1e-9);
}

// ----------------------------------------- hitting-time workspaces ----

TEST(ServingHittingTimeTest, ChainParallelWorkspaceMatchesSerial) {
  // A 5-node row-stochastic ring-ish chain.
  auto chain = CsrMatrix::FromTriplets(
      5, 5, {{0, 1, 0.5}, {0, 2, 0.5}, {1, 0, 1.0}, {2, 3, 0.7},
             {2, 0, 0.3}, {3, 4, 1.0}, {4, 2, 1.0}});
  std::vector<const CsrMatrix*> chains = {&chain};
  std::vector<double> weights = {1.0};

  auto serial = ChainHittingTime(chains, weights, {0}, 12);

  ThreadPool pool(3);
  HittingTimeWorkspace ws;
  for (int round = 0; round < 3; ++round) {  // workspace reuse across calls
    ChainHittingTimeInto(chains, weights, {0}, 12, &pool, ws);
    ASSERT_EQ(ws.h.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_DOUBLE_EQ(serial[i], ws.h[i]) << "round=" << round << " i=" << i;
    }
  }
}

// Regression (release-build OOB write): an out-of-range seed id must be
// skipped unconditionally, not filtered only by a compiled-out assert.
TEST(ServingHittingTimeTest, ChainOutOfRangeSeedIsSkipped) {
  auto chain = CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  auto valid = ChainHittingTime({&chain}, {1.0}, {0}, 8);
  auto with_bad = ChainHittingTime({&chain}, {1.0}, {0, 999999}, 8);
  ASSERT_EQ(valid.size(), with_bad.size());
  for (size_t i = 0; i < valid.size(); ++i) {
    EXPECT_DOUBLE_EQ(valid[i], with_bad[i]);
  }
}

TEST(ServingHittingTimeTest, BipartiteOutOfRangeSeedIsSkipped) {
  // 3 queries x 2 urls.
  auto q2u = CsrMatrix::FromTriplets(
      3, 2, {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}, {2, 1, 1.0}});
  auto u2q = q2u.Transpose();
  auto valid = BipartiteHittingTime(q2u, u2q, {0}, 8);
  auto with_bad = BipartiteHittingTime(q2u, u2q, {0, 77}, 8);
  ASSERT_EQ(valid.size(), with_bad.size());
  for (size_t i = 0; i < valid.size(); ++i) {
    EXPECT_DOUBLE_EQ(valid[i], with_bad[i]);
  }
}

TEST(ServingHittingTimeTest, BipartiteParallelMatchesSerial) {
  auto q2u = CsrMatrix::FromTriplets(
      3, 2, {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}, {2, 1, 1.0}});
  auto u2q = q2u.Transpose();
  auto serial = BipartiteHittingTime(q2u, u2q, {0}, 10);
  ThreadPool pool(3);
  auto parallel = BipartiteHittingTime(q2u, u2q, {0}, 10, nullptr, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]);
  }
}

// --------------------------------------- diversifier regressions ----

// Regression (request-path crash): an input query the compact-budget walk
// failed to admit used to throw std::out_of_range via local_index.at().
TEST(ExcludedCandidatesTest, InputMissingFromRepresentationIsNotExcluded) {
  CompactRepresentation rep;
  rep.queries = {5, 7};
  rep.local_index = {{5, 0u}, {7, 1u}};
  std::vector<bool> excluded = ExcludedCandidates(rep, /*input=*/42, {7});
  EXPECT_FALSE(excluded[0]);
  EXPECT_TRUE(excluded[1]);
}

TEST(ExcludedCandidatesTest, UnknownInputSentinelExcludesNothing) {
  CompactRepresentation rep;
  rep.queries = {5};
  rep.local_index = {{5, 0u}};
  std::vector<bool> excluded = ExcludedCandidates(rep, kInvalidStringId, {});
  EXPECT_FALSE(excluded[0]);
}

// Regression (stale stats): the empty-candidate-pool early return used to
// skip suggestions_returned / hitting_rounds, leaving a reused SuggestStats
// reporting the previous request's values.
TEST(DiversifierStatsTest, EmptyCandidatePoolResetsStats) {
  // A log with a single distinct query: the input is the whole compact
  // representation and is excluded, so the candidate pool is empty.
  std::vector<QueryLogRecord> records = {
      {1, "solo", "www.a.com", 100},
      {2, "solo", "www.b.com", 200},
  };
  SortByUserAndTime(records);
  auto sessions = Sessionize(records, {});
  MultiBipartite mb =
      MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  PqsdaDiversifier diversifier(mb);

  SuggestionRequest request;
  request.query = "solo";
  request.timestamp = 300;

  SuggestStats stats;
  stats.hitting_rounds = 99;
  stats.candidates_scored = 99;
  stats.suggestions_returned = 99;
  auto out = diversifier.Diversify(request, 5, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->candidates.empty());
  EXPECT_EQ(stats.hitting_rounds, 0u);
  EXPECT_EQ(stats.candidates_scored, 0u);
  EXPECT_EQ(stats.suggestions_returned, 0u);
}

// ------------------------------------------------ engine serving ----

std::vector<QueryLogRecord> ServingLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 150},
      {1, "java download", "www.java.com", 200},
      {4, "sun java", "www.java.com", 100},
      {4, "java download", "java.sun.com", 130},
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 160},
      {2, "solar energy", "www.energy.gov", 220},
      {5, "solar system", "www.nasa.gov", 90},
      {5, "solar energy", "www.nasa.gov", 140},
      {3, "sun", "www.thesun.co.uk", 100},
      {3, "sun daily uk", "www.thesun.co.uk", 150},
      {6, "sun daily uk", "www.thesun.co.uk", 110},
      {6, "uk news", "www.thesun.co.uk", 170},
  };
}

std::unique_ptr<PqsdaEngine> BuildServingEngine(size_t cache_capacity = 0) {
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 10;
  config.upm.hyper_rounds = 1;
  config.cache_capacity = cache_capacity;
  auto built = PqsdaEngine::Build(ServingLog(), config);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

SuggestionRequest ServingRequest(const std::string& query,
                                 UserId user = kNoUser) {
  SuggestionRequest request;
  request.query = query;
  request.timestamp = 400;
  request.user = user;
  return request;
}

TEST(SuggestBatchTest, MatchesSequentialSuggestLoop) {
  auto engine = BuildServingEngine();
  std::vector<SuggestionRequest> requests = {
      ServingRequest("sun"),
      ServingRequest("sun", 1),
      ServingRequest("solar energy", 2),
      ServingRequest("zzzz qqqq"),  // no term overlap -> NotFound
      ServingRequest("sun daily uk", 6),
  };

  std::vector<StatusOr<std::vector<Suggestion>>> sequential;
  for (const auto& request : requests) {
    sequential.push_back(engine->Suggest(request, 5));
  }

  ThreadPool pool(4);
  auto batched = engine->SuggestBatch(requests, 5, &pool);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(sequential[i].ok(), batched[i].ok()) << "request " << i;
    if (sequential[i].ok()) {
      EXPECT_EQ(*sequential[i], *batched[i]) << "request " << i;
    } else {
      EXPECT_EQ(sequential[i].status().code(), batched[i].status().code());
    }
  }
}

TEST(SuggestBatchTest, SharedPoolDefaultWorks) {
  auto engine = BuildServingEngine();
  std::vector<SuggestionRequest> requests = {ServingRequest("sun"),
                                             ServingRequest("solar system")};
  auto batched = engine->SuggestBatch(requests, 3);
  ASSERT_EQ(batched.size(), 2u);
  EXPECT_TRUE(batched[0].ok());
  EXPECT_TRUE(batched[1].ok());
}

// Regression (alert hygiene): a cold query must count as not_found, not as
// an internal error.
TEST(ServingMetricsTest, NotFoundDoesNotCountAsError) {
  auto engine = BuildServingEngine();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& errors = reg.GetCounter("pqsda.suggest.errors_total");
  obs::Counter& not_found = reg.GetCounter("pqsda.suggest.not_found_total");
  const uint64_t errors_before = errors.Value();
  const uint64_t not_found_before = not_found.Value();

  auto out = engine->Suggest(ServingRequest("zzzz qqqq"), 5);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(errors.Value(), errors_before);
  EXPECT_EQ(not_found.Value(), not_found_before + 1);
}

// --------------------------------------------------------- cache ----

TEST(SuggestionCacheTest, HitReturnsByteIdenticalSuggestions) {
  auto engine = BuildServingEngine(/*cache_capacity=*/64);
  obs::Counter& hits =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.hits_total");
  const uint64_t hits_before = hits.Value();

  auto first = engine->Suggest(ServingRequest("sun", 1), 5);
  ASSERT_TRUE(first.ok());
  auto second = engine->Suggest(ServingRequest("sun", 1), 5);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(hits.Value(), hits_before + 1);
}

// Regression: a cache hit skips the pipeline, so a reused SuggestStats must
// not keep the previous request's trace/solver/selection numbers.
TEST(SuggestionCacheTest, HitResetsReusedStats) {
  auto engine = BuildServingEngine(/*cache_capacity=*/64);
  SuggestStats stats;

  auto first = engine->Suggest(ServingRequest("sun", 1), 5, &stats);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(stats.personalized);
  EXPECT_GT(stats.hitting_rounds, 0u);
  EXPECT_GT(stats.trace.TotalSpans(), 1u);

  auto second = engine->Suggest(ServingRequest("sun", 1), 5, &stats);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(stats.personalized);
  EXPECT_EQ(stats.hitting_rounds, 0u);
  EXPECT_EQ(stats.candidates_scored, 0u);
  EXPECT_EQ(stats.trace.TotalSpans(), 1u);  // empty root, no stage spans
  EXPECT_EQ(stats.total_us(), 0);
  EXPECT_EQ(stats.suggestions_returned, second->size());
}

TEST(SuggestionCacheTest, KeyDistinguishesQueryUserContextAndK) {
  SuggestionRequest base = ServingRequest("sun", 1);
  SuggestionRequest other_user = ServingRequest("sun", 2);
  SuggestionRequest with_context = ServingRequest("sun", 1);
  with_context.context = {{"solar system", 350}};

  EXPECT_NE(SuggestionCache::KeyOf(base, 5),
            SuggestionCache::KeyOf(other_user, 5));
  EXPECT_NE(SuggestionCache::KeyOf(base, 5),
            SuggestionCache::KeyOf(base, 10));
  EXPECT_NE(SuggestionCache::KeyOf(base, 5),
            SuggestionCache::KeyOf(with_context, 5));
  // A rebuild swap changes the generation, so pre-swap entries can never
  // answer post-swap requests.
  EXPECT_NE(SuggestionCache::KeyOf(base, 5, /*generation=*/0),
            SuggestionCache::KeyOf(base, 5, /*generation=*/1));

  // Decay depends only on relative age: the same request shifted in time
  // shares an entry.
  SuggestionRequest shifted = with_context;
  shifted.timestamp += 1000;
  shifted.context[0].second += 1000;
  EXPECT_EQ(SuggestionCache::KeyOf(with_context, 5),
            SuggestionCache::KeyOf(shifted, 5));
}

// Regression: the key used to embed only a 64-bit hash of the context, so
// two colliding contexts shared one entry and a user could be served
// another session's suggestions. The hash now routes to a shard only;
// entries are stored and compared under the full serialized key. Force two
// distinct keys onto the same hash and check they never alias.
TEST(SuggestionCacheTest, HashCollisionDoesNotAliasEntries) {
  SuggestionCache cache;

  SuggestionCache::CacheKey first("session-one\x1f" "ctx-a");
  SuggestionCache::CacheKey second("session-two\x1f" "ctx-b");
  second.hash = first.hash;  // worst case: a full 64-bit collision

  cache.Insert(first, {{"alpha", 1.0}});
  cache.Insert(second, {{"beta", 2.0}});
  EXPECT_EQ(cache.size(), 2u);

  std::vector<Suggestion> out;
  ASSERT_TRUE(cache.Lookup(first, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query, "alpha");
  ASSERT_TRUE(cache.Lookup(second, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query, "beta");
}

// The serialization must keep distinct contexts distinct even when the
// pairs only differ in how the bytes split between query and offset.
TEST(SuggestionCacheTest, KeySeparatesContextQueryFromOffset) {
  SuggestionRequest a = ServingRequest("sun", 1);
  a.context = {{"solar1", 300}};
  SuggestionRequest b = ServingRequest("sun", 1);
  b.context = {{"solar", 1300}};
  EXPECT_NE(SuggestionCache::KeyOf(a, 5), SuggestionCache::KeyOf(b, 5));

  // Two single-entry contexts vs one two-entry context with the same bytes.
  SuggestionRequest c = ServingRequest("sun", 1);
  c.context = {{"x", 300}, {"y", 300}};
  SuggestionRequest d = ServingRequest("sun", 1);
  d.context = {{"x", 300}};
  EXPECT_NE(SuggestionCache::KeyOf(c, 5), SuggestionCache::KeyOf(d, 5));
}

TEST(SuggestionCacheTest, LruEvictsOldestAndRefreshesOnHit) {
  SuggestionCacheOptions options;
  options.capacity = 2;
  options.shards = 1;
  SuggestionCache cache(options);
  obs::Counter& evictions = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.evictions_total");
  const uint64_t evictions_before = evictions.Value();

  cache.Insert("a", {{"a1", 1.0}});
  cache.Insert("b", {{"b1", 1.0}});
  ASSERT_TRUE(cache.Lookup("a", nullptr));  // refresh "a"; "b" is now LRU
  cache.Insert("c", {{"c1", 1.0}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(evictions.Value(), evictions_before + 1);
  EXPECT_TRUE(cache.Lookup("a", nullptr));
  EXPECT_FALSE(cache.Lookup("b", nullptr));
  EXPECT_TRUE(cache.Lookup("c", nullptr));
}

TEST(SuggestionCacheTest, ConcurrentMixedAccessIsSafe) {
  SuggestionCacheOptions options;
  options.capacity = 32;
  options.shards = 4;
  SuggestionCache cache(options);
  ThreadPool pool(4);
  pool.ParallelFor(0, 512, 1, [&cache](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      std::string key = "k" + std::to_string(i % 48);
      if (i % 3 == 0) {
        cache.Insert(key, {{key, static_cast<double>(i)}});
      } else {
        std::vector<Suggestion> out;
        cache.Lookup(key, &out);
      }
    }
  });
  EXPECT_LE(cache.size(), 32u);
}

// Concurrent batched serving against one engine — the TSAN audit of the
// whole read path (expansion, solve, selection, personalization, cache).
TEST(SuggestBatchTest, ConcurrentBatchesShareOneEngineSafely) {
  auto engine = BuildServingEngine(/*cache_capacity=*/16);
  std::vector<SuggestionRequest> requests;
  const char* queries[] = {"sun", "solar system", "sun java",
                           "uk news", "solar energy"};
  for (int i = 0; i < 20; ++i) {
    requests.push_back(ServingRequest(queries[i % 5], (i % 3 == 0) ? 1 : kNoUser));
  }
  ThreadPool pool(4);
  auto first = engine->SuggestBatch(requests, 5, &pool);
  auto second = engine->SuggestBatch(requests, 5, &pool);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].ok(), second[i].ok());
    if (first[i].ok()) {
      EXPECT_EQ(*first[i], *second[i]);
    }
  }
}

}  // namespace
}  // namespace pqsda
