// The adaptive-cache acceptance suite: a model-checked policy-and-staleness
// oracle in four clusters.
//
//  1. Differential policy oracle: every CachePolicy (LRU, CLOCK, ARC, CAR)
//     is driven through randomized op traces — Zipf, uniform, scan, loop
//     mixes with out-of-band erases and clears, across a capacity matrix —
//     in lockstep with a transparent reference model transcribed
//     independently from the published pseudocode (ARC: Megiddo & Modha;
//     CAR: Bansal & Modha). Every externally observable decision must be
//     identical: hit/miss, the evicted keys, the ghost-hit verdict, the
//     resident count and the full StatusNow() introspection.
//  2. SuggestionCache composition: the sharded cache over any policy and
//     shard count must equal the composition of per-shard reference models
//     routed by the same key hash, for hits, misses and total size.
//  3. Validation semantics: the tri-state CacheValidity contract — kValid
//     serves, kStale erases exactly once, kMismatch (mid-swap: entry newer
//     than the reader's pinned snapshot) misses but stays resident — for
//     both the positive and the negative cache.
//  4. The staleness property the tentpole promises: under randomized
//     interleavings of ingest deltas, rebuild swaps, warmup replays and
//     Suggest traffic (single-threaded schedules and a concurrent storm),
//     every request the engine answered — cache hits included — replays
//     bitwise-identical against its pinned generation with the cache
//     bypassed. A cache that ever served a stale or wrong list fails the
//     fingerprint comparison.
//
// This file is part of the TSAN/ASan suites run_benches.sh re-runs, and
// ctest additionally re-runs the oracle under a fixed seed matrix
// (--gtest_random_seed); the trace generator derives from that seed.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/index_manager.h"
#include "core/pqsda_engine.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/telemetry.h"
#include "suggest/cache_policy.h"
#include "suggest/suggestion_cache.h"

namespace pqsda {
namespace {

using obs::ExplainRecord;
using obs::RequestLogEntry;

// ================================================================ oracle ====
//
// Transparent reference models over plain vectors, written as literal
// transcriptions of the published pseudocode and sharing no code with
// src/suggest/cache_policy.cc. Everything is O(n) per op on purpose: the
// reference optimizes for being obviously correct, not fast.

struct RefDecision {
  bool hit = false;
  bool ghost_hit = false;
  std::vector<std::string> evicted;
};

class RefPolicy {
 public:
  virtual ~RefPolicy() = default;
  virtual RefDecision Access(const std::string& key) = 0;
  virtual void Erase(const std::string& key) = 0;
  virtual void Clear() = 0;
  virtual bool IsResident(const std::string& key) const = 0;
  virtual size_t Resident() const = 0;
  virtual CachePolicyStatus StatusNow() const = 0;
};

bool Contains(const std::vector<std::string>& v, const std::string& key) {
  return std::find(v.begin(), v.end(), key) != v.end();
}

void Remove(std::vector<std::string>* v, const std::string& key) {
  v->erase(std::remove(v->begin(), v->end(), key), v->end());
}

class RefLru : public RefPolicy {
 public:
  explicit RefLru(size_t cap) : cap_(std::max<size_t>(cap, 1)) {}

  RefDecision Access(const std::string& key) override {
    RefDecision d;
    if (Contains(mru_, key)) {
      d.hit = true;
      Remove(&mru_, key);
      mru_.insert(mru_.begin(), key);
      return d;
    }
    mru_.insert(mru_.begin(), key);
    while (mru_.size() > cap_) {
      d.evicted.push_back(mru_.back());
      mru_.pop_back();
    }
    return d;
  }

  void Erase(const std::string& key) override { Remove(&mru_, key); }
  void Clear() override { mru_.clear(); }
  bool IsResident(const std::string& key) const override {
    return Contains(mru_, key);
  }
  size_t Resident() const override { return mru_.size(); }
  CachePolicyStatus StatusNow() const override {
    CachePolicyStatus s;
    s.resident = mru_.size();
    s.capacity = cap_;
    s.t1 = mru_.size();
    return s;
  }

 private:
  size_t cap_;
  std::vector<std::string> mru_;  // front = MRU
};

// CLOCK with the deterministic free-slot rule the production header
// documents: a free slot is the lowest unused index (the hand does not
// move), a full cache sweeps the hand clearing reference bits until a 0-bit
// victim surfaces and parks one past it, and an erase clears the slot in
// place.
class RefClock : public RefPolicy {
 public:
  explicit RefClock(size_t cap)
      : cap_(std::max<size_t>(cap, 1)), keys_(cap_), ref_(cap_), used_(cap_) {}

  RefDecision Access(const std::string& key) override {
    RefDecision d;
    for (size_t s = 0; s < cap_; ++s) {
      if (used_[s] && keys_[s] == key) {
        d.hit = true;
        ref_[s] = true;
        return d;
      }
    }
    for (size_t s = 0; s < cap_; ++s) {
      if (!used_[s]) {
        keys_[s] = key;
        ref_[s] = false;
        used_[s] = true;
        return d;
      }
    }
    while (ref_[hand_]) {
      ref_[hand_] = false;
      hand_ = (hand_ + 1) % cap_;
    }
    d.evicted.push_back(keys_[hand_]);
    keys_[hand_] = key;
    ref_[hand_] = false;
    hand_ = (hand_ + 1) % cap_;
    return d;
  }

  void Erase(const std::string& key) override {
    for (size_t s = 0; s < cap_; ++s) {
      if (used_[s] && keys_[s] == key) {
        used_[s] = false;
        ref_[s] = false;
        keys_[s].clear();
        return;
      }
    }
  }

  void Clear() override {
    std::fill(used_.begin(), used_.end(), false);
    std::fill(ref_.begin(), ref_.end(), false);
    hand_ = 0;
  }

  bool IsResident(const std::string& key) const override {
    for (size_t s = 0; s < cap_; ++s) {
      if (used_[s] && keys_[s] == key) return true;
    }
    return false;
  }

  size_t Resident() const override {
    size_t n = 0;
    for (size_t s = 0; s < cap_; ++s) n += used_[s] ? 1 : 0;
    return n;
  }

  CachePolicyStatus StatusNow() const override {
    CachePolicyStatus s;
    s.resident = Resident();
    s.capacity = cap_;
    s.t1 = s.resident;
    return s;
  }

 private:
  size_t cap_;
  std::vector<std::string> keys_;
  std::vector<bool> ref_;
  std::vector<bool> used_;
  size_t hand_ = 0;
};

// ARC, transcribed case by case from Megiddo & Modha's Figure 4. Lists are
// vectors with front = MRU; REPLACE demotes a resident LRU page to the head
// of its ghost list.
class RefArc : public RefPolicy {
 public:
  explicit RefArc(size_t cap) : c_(std::max<size_t>(cap, 1)) {}

  RefDecision Access(const std::string& key) override {
    RefDecision d;
    if (Contains(t1_, key) || Contains(t2_, key)) {
      // Case I: cache hit — promote to MRU of T2.
      d.hit = true;
      Remove(&t1_, key);
      Remove(&t2_, key);
      t2_.insert(t2_.begin(), key);
      return d;
    }
    if (Contains(b1_, key)) {
      // Case II: history hit in B1 — grow the recency target.
      const size_t delta = std::max<size_t>(b2_.size() / b1_.size(), 1);
      p_ = std::min(c_, p_ + delta);
      Replace(/*in_b2=*/false, &d.evicted);
      Remove(&b1_, key);
      t2_.insert(t2_.begin(), key);
      d.ghost_hit = true;
      return d;
    }
    if (Contains(b2_, key)) {
      // Case III: history hit in B2 — shrink the recency target.
      const size_t delta = std::max<size_t>(b1_.size() / b2_.size(), 1);
      p_ = p_ > delta ? p_ - delta : 0;
      Replace(/*in_b2=*/true, &d.evicted);
      Remove(&b2_, key);
      t2_.insert(t2_.begin(), key);
      d.ghost_hit = true;
      return d;
    }
    // Case IV: a completely new key.
    const size_t l1 = t1_.size() + b1_.size();
    if (l1 == c_) {
      if (t1_.size() < c_) {
        b1_.pop_back();
        Replace(/*in_b2=*/false, &d.evicted);
      } else {
        d.evicted.push_back(t1_.back());
        t1_.pop_back();
      }
    } else if (l1 < c_) {
      const size_t total = t1_.size() + t2_.size() + b1_.size() + b2_.size();
      if (total >= c_) {
        if (total == 2 * c_) b2_.pop_back();
        Replace(/*in_b2=*/false, &d.evicted);
      }
    }
    t1_.insert(t1_.begin(), key);
    return d;
  }

  void Erase(const std::string& key) override {
    Remove(&t1_, key);
    Remove(&t2_, key);
  }

  void Clear() override {
    t1_.clear();
    t2_.clear();
    b1_.clear();
    b2_.clear();
    p_ = 0;
  }

  bool IsResident(const std::string& key) const override {
    return Contains(t1_, key) || Contains(t2_, key);
  }
  size_t Resident() const override { return t1_.size() + t2_.size(); }
  CachePolicyStatus StatusNow() const override {
    CachePolicyStatus s;
    s.resident = Resident();
    s.capacity = c_;
    s.t1 = t1_.size();
    s.t2 = t2_.size();
    s.b1 = b1_.size();
    s.b2 = b2_.size();
    s.p = p_;
    return s;
  }

 private:
  void Replace(bool in_b2, std::vector<std::string>* evicted) {
    if (!t1_.empty() && ((in_b2 && t1_.size() == p_) || t1_.size() > p_)) {
      evicted->push_back(t1_.back());
      b1_.insert(b1_.begin(), t1_.back());
      t1_.pop_back();
    } else if (!t2_.empty()) {
      evicted->push_back(t2_.back());
      b2_.insert(b2_.begin(), t2_.back());
      t2_.pop_back();
    }
  }

  size_t c_;
  size_t p_ = 0;
  std::vector<std::string> t1_, t2_, b1_, b2_;  // front = MRU / ghost head
};

// CAR, transcribed from Bansal & Modha's Figure 2. T1/T2 are circular
// buffers modeled as vectors with index 0 = the clock hand and push at the
// tail; B1/B2 are ghost lists with front = most recent.
class RefCar : public RefPolicy {
 public:
  explicit RefCar(size_t cap) : c_(std::max<size_t>(cap, 1)) {}

  RefDecision Access(const std::string& key) override {
    RefDecision d;
    if (FindClock(t1_, key) >= 0 || FindClock(t2_, key) >= 0) {
      d.hit = true;
      SetRef(key);
      return d;
    }
    const bool in_b1 = Contains(b1_, key);
    const bool in_b2 = Contains(b2_, key);
    if (t1_.size() + t2_.size() == c_) {
      ReplaceClock(&d.evicted);
      if (!in_b1 && !in_b2) {
        if (t1_.size() + b1_.size() == c_) {
          if (!b1_.empty()) b1_.pop_back();
        } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() ==
                   2 * c_) {
          if (!b2_.empty()) b2_.pop_back();
        }
      }
    }
    if (!in_b1 && !in_b2) {
      t1_.push_back({key, false});
      return d;
    }
    if (in_b1) {
      const size_t delta = std::max<size_t>(b2_.size() / b1_.size(), 1);
      p_ = std::min(c_, p_ + delta);
      Remove(&b1_, key);
    } else {
      const size_t delta = std::max<size_t>(b1_.size() / b2_.size(), 1);
      p_ = p_ > delta ? p_ - delta : 0;
      Remove(&b2_, key);
    }
    t2_.push_back({key, false});
    d.ghost_hit = true;
    return d;
  }

  void Erase(const std::string& key) override {
    const int i1 = FindClock(t1_, key);
    if (i1 >= 0) t1_.erase(t1_.begin() + i1);
    const int i2 = FindClock(t2_, key);
    if (i2 >= 0) t2_.erase(t2_.begin() + i2);
  }

  void Clear() override {
    t1_.clear();
    t2_.clear();
    b1_.clear();
    b2_.clear();
    p_ = 0;
  }

  bool IsResident(const std::string& key) const override {
    return FindClock(t1_, key) >= 0 || FindClock(t2_, key) >= 0;
  }
  size_t Resident() const override { return t1_.size() + t2_.size(); }
  CachePolicyStatus StatusNow() const override {
    CachePolicyStatus s;
    s.resident = Resident();
    s.capacity = c_;
    s.t1 = t1_.size();
    s.t2 = t2_.size();
    s.b1 = b1_.size();
    s.b2 = b2_.size();
    s.p = p_;
    return s;
  }

 private:
  struct ClockPage {
    std::string key;
    bool ref = false;
  };

  static int FindClock(const std::vector<ClockPage>& clock,
                       const std::string& key) {
    for (size_t i = 0; i < clock.size(); ++i) {
      if (clock[i].key == key) return static_cast<int>(i);
    }
    return -1;
  }

  void SetRef(const std::string& key) {
    const int i1 = FindClock(t1_, key);
    if (i1 >= 0) t1_[i1].ref = true;
    const int i2 = FindClock(t2_, key);
    if (i2 >= 0) t2_[i2].ref = true;
  }

  void ReplaceClock(std::vector<std::string>* evicted) {
    for (;;) {
      if (t1_.size() >= std::max<size_t>(p_, 1)) {
        if (!t1_.front().ref) {
          evicted->push_back(t1_.front().key);
          b1_.insert(b1_.begin(), t1_.front().key);
          t1_.erase(t1_.begin());
          return;
        }
        ClockPage page = t1_.front();
        page.ref = false;
        t1_.erase(t1_.begin());
        t2_.push_back(page);
      } else {
        if (!t2_.front().ref) {
          evicted->push_back(t2_.front().key);
          b2_.insert(b2_.begin(), t2_.front().key);
          t2_.erase(t2_.begin());
          return;
        }
        ClockPage page = t2_.front();
        page.ref = false;
        t2_.erase(t2_.begin());
        t2_.push_back(page);
      }
    }
  }

  size_t c_;
  size_t p_ = 0;
  std::vector<ClockPage> t1_, t2_;  // index 0 = clock hand
  std::vector<std::string> b1_, b2_;
};

std::unique_ptr<RefPolicy> MakeRefPolicy(CachePolicyKind kind, size_t cap) {
  switch (kind) {
    case CachePolicyKind::kLru:
      return std::make_unique<RefLru>(cap);
    case CachePolicyKind::kClock:
      return std::make_unique<RefClock>(cap);
    case CachePolicyKind::kArc:
      return std::make_unique<RefArc>(cap);
    case CachePolicyKind::kCar:
      return std::make_unique<RefCar>(cap);
  }
  return nullptr;
}

// --------------------------------------------------------------- traces ----

struct TraceOp {
  enum Kind { kAccess, kErase, kClear };
  Kind kind = kAccess;
  std::string key;
};

enum class TracePattern { kUniform, kZipf, kScan, kHotLoop };

// `pattern` shapes the access stream; every trace additionally mixes in
// out-of-band erases (~6%, the invalidation path) and rare Clears.
std::vector<TraceOp> MakeTrace(std::mt19937* rng, size_t ops, size_t key_space,
                               size_t capacity, TracePattern pattern) {
  std::vector<TraceOp> trace;
  trace.reserve(ops);
  std::uniform_int_distribution<size_t> uniform(0, key_space - 1);
  std::vector<double> zipf_weights;
  for (size_t i = 0; i < key_space; ++i) {
    zipf_weights.push_back(1.0 / static_cast<double>(i + 1));
  }
  std::discrete_distribution<size_t> zipf(zipf_weights.begin(),
                                          zipf_weights.end());
  std::uniform_int_distribution<int> pct(0, 99);
  size_t scan_next = 0;
  for (size_t i = 0; i < ops; ++i) {
    const int roll = pct(*rng);
    TraceOp op;
    if (roll < 1) {
      op.kind = TraceOp::kClear;
      trace.push_back(op);
      continue;
    }
    size_t key;
    switch (pattern) {
      case TracePattern::kUniform:
        key = uniform(*rng);
        break;
      case TracePattern::kZipf:
        key = zipf(*rng);
        break;
      case TracePattern::kScan:
        // Zipf head with periodic cold sweeps — the pattern that flushes a
        // plain LRU and that ARC/CAR's ghost lists absorb.
        if (i % 4 == 3) {
          key = key_space + (scan_next++ % (4 * key_space));
        } else {
          key = zipf(*rng);
        }
        break;
      case TracePattern::kHotLoop:
        // A loop one larger than the capacity (LRU's pathological case)
        // mixed with uniform noise.
        key = (roll % 2 == 0) ? (i % (capacity + 1)) : uniform(*rng);
        break;
    }
    op.kind = roll < 7 ? TraceOp::kErase : TraceOp::kAccess;
    op.key = "q" + std::to_string(key);
    trace.push_back(op);
  }
  return trace;
}

int OracleSeed() {
  // --gtest_random_seed=N makes the whole oracle matrix reproducible; the
  // default 0 is itself a fixed, valid seed.
  return testing::UnitTest::GetInstance()->random_seed();
}

// Drives the production policy and the reference model through one trace in
// lockstep, comparing every observable decision. Residency of the
// production policy is tracked externally from its own OnInsert/evicted
// answers — exactly what the owning cache shard does.
void RunDifferential(CachePolicyKind kind, size_t capacity,
                     const std::vector<TraceOp>& trace) {
  std::unique_ptr<CachePolicy> policy = MakeCachePolicy(kind, capacity);
  std::unique_ptr<RefPolicy> ref = MakeRefPolicy(kind, capacity);
  ASSERT_NE(policy, nullptr);
  ASSERT_NE(ref, nullptr);
  std::set<std::string> resident;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace[i];
    SCOPED_TRACE("op " + std::to_string(i) + " key " + op.key);
    switch (op.kind) {
      case TraceOp::kClear:
        policy->Clear();
        ref->Clear();
        resident.clear();
        break;
      case TraceOp::kErase:
        policy->OnErase(op.key);
        ref->Erase(op.key);
        resident.erase(op.key);
        break;
      case TraceOp::kAccess: {
        const bool ref_hit = ref->IsResident(op.key);
        const bool pol_hit = resident.count(op.key) > 0;
        ASSERT_EQ(pol_hit, ref_hit);
        if (ref_hit) {
          policy->OnHit(op.key);
          RefDecision d = ref->Access(op.key);
          ASSERT_TRUE(d.hit);
          break;
        }
        std::vector<std::string> evicted;
        const bool ghost = policy->OnInsert(op.key, &evicted);
        RefDecision d = ref->Access(op.key);
        ASSERT_FALSE(d.hit);
        ASSERT_EQ(ghost, d.ghost_hit);
        ASSERT_EQ(evicted, d.evicted);
        resident.insert(op.key);
        for (const std::string& victim : evicted) resident.erase(victim);
        break;
      }
    }
    ASSERT_EQ(policy->resident(), ref->Resident());
    ASSERT_EQ(policy->resident(), resident.size());
    if (i % 64 == 0 || i + 1 == trace.size()) {
      const CachePolicyStatus got = policy->StatusNow();
      const CachePolicyStatus want = ref->StatusNow();
      ASSERT_EQ(got.resident, want.resident);
      ASSERT_EQ(got.capacity, want.capacity);
      ASSERT_EQ(got.t1, want.t1);
      ASSERT_EQ(got.t2, want.t2);
      ASSERT_EQ(got.b1, want.b1);
      ASSERT_EQ(got.b2, want.b2);
      ASSERT_EQ(got.p, want.p);
    }
  }
}

TEST(CachePolicyOracleTest, DifferentialAgainstReferenceModels) {
  const int seed = OracleSeed();
  SCOPED_TRACE("gtest_random_seed " + std::to_string(seed));
  const CachePolicyKind kinds[] = {CachePolicyKind::kLru,
                                   CachePolicyKind::kClock,
                                   CachePolicyKind::kArc,
                                   CachePolicyKind::kCar};
  const size_t capacities[] = {1, 2, 3, 4, 7, 16, 64};
  const TracePattern patterns[] = {TracePattern::kUniform, TracePattern::kZipf,
                                   TracePattern::kScan,
                                   TracePattern::kHotLoop};
  for (CachePolicyKind kind : kinds) {
    for (size_t capacity : capacities) {
      for (TracePattern pattern : patterns) {
        SCOPED_TRACE(std::string(CachePolicyName(kind)) + " capacity " +
                     std::to_string(capacity) + " pattern " +
                     std::to_string(static_cast<int>(pattern)));
        // Key space a small multiple of capacity keeps ghost lists and
        // eviction pressure active; an independent stream per cell.
        std::mt19937 rng(static_cast<uint32_t>(seed) * 2654435761u +
                         static_cast<uint32_t>(capacity) * 97u +
                         static_cast<uint32_t>(kind) * 13u +
                         static_cast<uint32_t>(pattern));
        const size_t key_space = std::max<size_t>(3 * capacity, 6);
        RunDifferential(kind, capacity,
                        MakeTrace(&rng, 1500, key_space, capacity, pattern));
      }
    }
  }
}

TEST(CachePolicyOracleTest, NamesParseAndRoundTrip) {
  const CachePolicyKind kinds[] = {CachePolicyKind::kLru,
                                   CachePolicyKind::kClock,
                                   CachePolicyKind::kArc,
                                   CachePolicyKind::kCar};
  for (CachePolicyKind kind : kinds) {
    CachePolicyKind parsed = CachePolicyKind::kLru;
    ASSERT_TRUE(ParseCachePolicy(CachePolicyName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    EXPECT_EQ(MakeCachePolicy(kind, 4)->kind(), kind);
  }
  CachePolicyKind untouched = CachePolicyKind::kCar;
  EXPECT_FALSE(ParseCachePolicy("mru", &untouched));
  EXPECT_EQ(untouched, CachePolicyKind::kCar);
}

TEST(CachePolicyOracleTest, ArcReportsGhostHits) {
  auto arc = MakeCachePolicy(CachePolicyKind::kArc, 2);
  std::vector<std::string> evicted;
  EXPECT_FALSE(arc->OnInsert("a", &evicted));
  EXPECT_FALSE(arc->OnInsert("b", &evicted));
  EXPECT_TRUE(evicted.empty());
  arc->OnHit("b");  // b moves to T2; a is T1's LRU
  EXPECT_FALSE(arc->OnInsert("c", &evicted));
  ASSERT_EQ(evicted, std::vector<std::string>{"a"});  // a demoted to B1
  evicted.clear();
  EXPECT_TRUE(arc->OnInsert("a", &evicted));  // history hit in B1
  EXPECT_EQ(evicted, std::vector<std::string>{"b"});
  EXPECT_GE(arc->StatusNow().p, 1u);  // the hit grew the recency target
}

TEST(CachePolicyOracleTest, ClockGrantsSecondChance) {
  auto clock = MakeCachePolicy(CachePolicyKind::kClock, 2);
  ASSERT_FALSE(clock->OnInsert("a", nullptr));
  ASSERT_FALSE(clock->OnInsert("b", nullptr));
  clock->OnHit("a");  // a's reference bit protects it from the next sweep
  std::vector<std::string> evicted;
  ASSERT_FALSE(clock->OnInsert("c", &evicted));
  EXPECT_EQ(evicted, std::vector<std::string>{"b"});
}

// The adaptive policies' reason to exist: on a Zipf head polluted by cold
// scans, ARC and CAR must not do worse than LRU (they park scan traffic in
// T1 and protect the re-referenced head in T2).
TEST(CachePolicyOracleTest, AdaptivePoliciesAbsorbScanPollution) {
  const int seed = OracleSeed();
  std::mt19937 rng(static_cast<uint32_t>(seed) + 7u);
  const size_t capacity = 16;
  const auto trace =
      MakeTrace(&rng, 4000, /*key_space=*/24, capacity, TracePattern::kScan);
  auto hits_of = [&trace, capacity](CachePolicyKind kind) {
    auto policy = MakeCachePolicy(kind, capacity);
    std::set<std::string> resident;
    size_t hits = 0;
    for (const TraceOp& op : trace) {
      if (op.kind != TraceOp::kAccess) continue;  // pure access stream
      if (resident.count(op.key) > 0) {
        ++hits;
        policy->OnHit(op.key);
        continue;
      }
      std::vector<std::string> evicted;
      policy->OnInsert(op.key, &evicted);
      resident.insert(op.key);
      for (const std::string& victim : evicted) resident.erase(victim);
    }
    return hits;
  };
  const size_t lru = hits_of(CachePolicyKind::kLru);
  EXPECT_GE(hits_of(CachePolicyKind::kArc), lru);
  EXPECT_GE(hits_of(CachePolicyKind::kCar), lru);
}

// =========================================================== composition ====

std::vector<Suggestion> ListFor(const std::string& key) {
  return {{key, 1.0}, {key + "+alt", 0.5}};
}

// The sharded cache must equal the composition of per-shard reference
// policies routed by the same key hash, for every policy and shard count.
TEST(SuggestionCacheShardingOracleTest, MatchesPerShardReferenceComposition) {
  const int seed = OracleSeed();
  const CachePolicyKind kinds[] = {CachePolicyKind::kLru,
                                   CachePolicyKind::kClock,
                                   CachePolicyKind::kArc,
                                   CachePolicyKind::kCar};
  for (CachePolicyKind kind : kinds) {
    for (size_t shards : {1u, 2u, 3u, 8u}) {
      SCOPED_TRACE(std::string(CachePolicyName(kind)) + " shards " +
                   std::to_string(shards));
      const size_t capacity = 24;
      SuggestionCacheOptions options;
      options.capacity = capacity;
      options.shards = shards;
      options.policy = kind;
      options.name = "oracle";
      SuggestionCache cache(options);
      // Production rounds the budget up to shards * ceil(capacity/shards).
      const size_t per_shard = (capacity + shards - 1) / shards;
      ASSERT_EQ(cache.capacity(), per_shard * shards);
      std::vector<std::unique_ptr<RefPolicy>> ref;
      for (size_t s = 0; s < shards; ++s) {
        ref.push_back(MakeRefPolicy(kind, per_shard));
      }
      std::mt19937 rng(static_cast<uint32_t>(seed) * 31u +
                       static_cast<uint32_t>(kind) * 5u +
                       static_cast<uint32_t>(shards));
      const auto trace = MakeTrace(&rng, 1200, /*key_space=*/64, capacity,
                                   TracePattern::kZipf);
      for (size_t i = 0; i < trace.size(); ++i) {
        const TraceOp& op = trace[i];
        if (op.kind != TraceOp::kAccess) continue;
        SCOPED_TRACE("op " + std::to_string(i) + " key " + op.key);
        const SuggestionCache::CacheKey key(op.key);
        RefPolicy& shard_ref = *ref[key.hash % shards];
        std::vector<Suggestion> out;
        const bool hit = cache.Lookup(key, &out);
        const RefDecision d = shard_ref.Access(op.key);
        ASSERT_EQ(hit, d.hit);
        if (hit) {
          // A hit returns exactly the inserted list.
          ASSERT_EQ(out, ListFor(op.key));
        } else {
          cache.Insert(key, ListFor(op.key));
        }
        size_t want_size = 0;
        for (const auto& r : ref) want_size += r->Resident();
        ASSERT_EQ(cache.size(), want_size);
      }
      // The /statusz introspection aggregates the same per-shard state.
      CachePolicyStatus want;
      for (const auto& r : ref) {
        const CachePolicyStatus s = r->StatusNow();
        want.resident += s.resident;
        want.t1 += s.t1;
        want.t2 += s.t2;
        want.b1 += s.b1;
        want.b2 += s.b2;
        want.p += s.p;
      }
      const CachePolicyStatus got = cache.PolicyStatus();
      EXPECT_EQ(got.resident, want.resident);
      EXPECT_EQ(got.t1, want.t1);
      EXPECT_EQ(got.t2, want.t2);
      EXPECT_EQ(got.b1, want.b1);
      EXPECT_EQ(got.b2, want.b2);
      EXPECT_EQ(got.p, want.p);
    }
  }
}

// ============================================================ validation ====

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Default().GetCounter(name).Value();
}

SuggestionCache::Validator ValidatorFor(uint64_t current_gen) {
  return [current_gen](const SuggestionCache::ValidationVector& components)
             -> CacheValidity {
    bool stale = false;
    for (const auto& [component, gen] : components) {
      (void)component;
      if (gen > current_gen) return CacheValidity::kMismatch;
      if (gen < current_gen) stale = true;
    }
    return stale ? CacheValidity::kStale : CacheValidity::kValid;
  };
}

TEST(CacheValidationTest, TriStateContract) {
  SuggestionCacheOptions options;
  options.capacity = 8;
  options.shards = 1;
  options.name = "validation";
  SuggestionCache cache(options);
  std::vector<Suggestion> out;

  // kValid: components at the reader's generations serve.
  cache.Insert("valid", ListFor("valid"), {{0, 5}});
  EXPECT_TRUE(cache.Lookup("valid", &out, ValidatorFor(5)));

  // kStale: a reader ahead of the entry erases it — exactly once.
  const uint64_t stale_before =
      CounterValue("pqsda.cache.stale_invalidations_total");
  EXPECT_FALSE(cache.Lookup("valid", &out, ValidatorFor(6)));
  EXPECT_EQ(CounterValue("pqsda.cache.stale_invalidations_total"),
            stale_before + 1);
  // Erased: even the old-generation reader misses now, without a second
  // stale invalidation.
  EXPECT_FALSE(cache.Lookup("valid", &out, ValidatorFor(5)));
  EXPECT_EQ(CounterValue("pqsda.cache.stale_invalidations_total"),
            stale_before + 1);

  // kMismatch: the mid-swap case — the entry was filled against a *newer*
  // generation than the reader's pinned snapshot. The reader misses, but
  // the entry survives for current-generation readers.
  cache.Insert("fresh", ListFor("fresh"), {{0, 7}});
  const uint64_t mismatch_before =
      CounterValue("pqsda.cache.mismatch_misses_total");
  EXPECT_FALSE(cache.Lookup("fresh", &out, ValidatorFor(5)));
  EXPECT_EQ(CounterValue("pqsda.cache.mismatch_misses_total"),
            mismatch_before + 1);
  EXPECT_TRUE(cache.Lookup("fresh", &out, ValidatorFor(7)));

  // Entries without components carry their generation in the key and are
  // always valid.
  cache.Insert("keyed", ListFor("keyed"));
  EXPECT_TRUE(cache.Lookup("keyed", &out, ValidatorFor(999)));
}

TEST(CacheValidationTest, NegativeCacheTriStateAndBound) {
  NegativeSuggestionCache cache(/*capacity=*/4);

  cache.Insert("miss0", {{2, 5}});
  EXPECT_TRUE(cache.Lookup("miss0", ValidatorFor(5)));

  // kStale erases (an ingest made the component newer — the query may be
  // known now, so the engine must re-ask the index).
  const uint64_t inval_before =
      CounterValue("pqsda.cache.negative_invalidations_total");
  EXPECT_FALSE(cache.Lookup("miss0", ValidatorFor(6)));
  EXPECT_EQ(CounterValue("pqsda.cache.negative_invalidations_total"),
            inval_before + 1);
  EXPECT_FALSE(cache.Lookup("miss0", ValidatorFor(5)));
  EXPECT_EQ(cache.size(), 0u);

  // kMismatch misses but keeps the entry.
  cache.Insert("miss1", {{2, 7}});
  EXPECT_FALSE(cache.Lookup("miss1", ValidatorFor(5)));
  EXPECT_TRUE(cache.Lookup("miss1", ValidatorFor(7)));

  // Bounded: the LRU tail falls off.
  for (int i = 0; i < 10; ++i) {
    cache.Insert("storm" + std::to_string(i), {{2, 7}});
  }
  EXPECT_LE(cache.size(), 4u);
}

// ============================================================= staleness ====

// The corpus: three query clusters (java / astronomy / uk news) across six
// users, same shape as the explain suite's — small enough for fast builds,
// rich enough that expansion crosses clusters.
std::vector<QueryLogRecord> StalenessLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 150},
      {1, "java download", "www.java.com", 200},
      {4, "sun java", "www.java.com", 100},
      {4, "java download", "java.sun.com", 130},
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 160},
      {2, "solar energy", "www.energy.gov", 220},
      {5, "solar system", "www.nasa.gov", 90},
      {5, "solar energy", "www.nasa.gov", 140},
      {3, "sun", "www.thesun.co.uk", 100},
      {3, "sun daily uk", "www.thesun.co.uk", 150},
      {6, "sun daily uk", "www.thesun.co.uk", 110},
      {6, "uk news", "www.thesun.co.uk", 170},
  };
}

// Fresh ingest traffic, cycle `n`: a new user reinforcing one cluster with
// timestamps past the training log.
std::vector<QueryLogRecord> FreshDelta(int n) {
  const UserId user = static_cast<UserId>(20 + n);
  const int64_t t = 5000 + 1000 * n;
  switch (n % 3) {
    case 0:
      return {{user, "solar energy", "www.energy.gov", t},
              {user, "solar panels", "www.energy.gov", t + 50}};
    case 1:
      return {{user, "java download", "www.java.com", t},
              {user, "java update", "www.java.com", t + 50}};
    default:
      return {{user, "uk news", "www.thesun.co.uk", t},
              {user, "uk weather", "www.thesun.co.uk", t + 50}};
  }
}

uint64_t FingerprintOf(const std::vector<Suggestion>& list) {
  obs::Fingerprint64 fp;
  for (const Suggestion& s : list) {
    fp.Mix(s.query);
    fp.MixDouble(s.score);
  }
  return fp.value();
}

RequestLogEntry EntryFor(const SuggestionRequest& request, size_t k,
                         const ExplainRecord& record) {
  RequestLogEntry entry;
  entry.request_id = record.request_id;
  entry.user = request.user;
  entry.query = request.query;
  entry.k = k;
  entry.timestamp = request.timestamp;
  entry.context = request.context;
  entry.generation = record.generation;
  entry.rung = static_cast<uint32_t>(record.rung);
  entry.cache_hit = record.cache_hit;
  entry.ok = record.ok;
  entry.fingerprint = record.fingerprint;
  return entry;
}

std::string StalenessLogPath(const std::string& name) {
  return testing::TempDir() + "pqsda_cache_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

std::unique_ptr<PqsdaEngine> BuildStalenessEngine(
    CachePolicyKind policy, bool delta_aware, const std::string& warmup_path,
    bool personalize = true) {
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 10;
  config.upm.hyper_rounds = 1;
  config.personalize = personalize;
  config.cache_capacity = 64;
  config.cache_shards = 2;
  config.cache_policy = policy;
  config.cache_delta_aware = delta_aware;
  config.negative_cache_capacity = 32;
  config.cache_warmup.log_path = warmup_path;
  config.cache_warmup.max_requests = 64;
  config.ingest.rebuild_min_records = SIZE_MAX;  // rebuilds only on demand
  config.ingest.retired_snapshots = 16;          // every generation replayable
  auto built = PqsdaEngine::Build(StalenessLog(), config);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

// The single-threaded model check: a randomized schedule interleaves
// Suggest traffic (known and unknown queries, alternating users), ingest
// deltas and rebuild swaps (each swap triggers the off-path warmup replay of
// the request log). After *every* served request the schedule immediately
// replays it against its pinned generation with the cache bypassed and
// demands a bitwise-equal fingerprint — a cache hit that survived a swap it
// should not have survived fails on the spot, with the op index in the
// trace.
TEST(CacheStalenessOracleTest, RandomizedSwapScheduleNeverServesStale) {
  const int seed = OracleSeed();
  SCOPED_TRACE("gtest_random_seed " + std::to_string(seed));

  for (CachePolicyKind policy :
       {CachePolicyKind::kArc, CachePolicyKind::kLru}) {
    SCOPED_TRACE(CachePolicyName(policy));
    // A fresh request log per policy: the engine's serving path appends to
    // it (sample_every=1) and every rebuild swap warms the new generation
    // from it.
    const std::string log_path =
        StalenessLogPath(std::string("sched_") + CachePolicyName(policy));
    std::remove(log_path.c_str());
    obs::ServingTelemetryOptions toptions;
    obs::ServingTelemetry& telemetry =
        obs::ServingTelemetry::Install(toptions);
    obs::RequestLogOptions loptions;
    loptions.path = log_path;
    loptions.sample_every = 1;
    loptions.slow_us = INT64_MAX;
    auto log = obs::RequestLog::Open(loptions);
    ASSERT_TRUE(log.ok());
    telemetry.AttachRequestLog(std::move(log).value());

    auto engine = BuildStalenessEngine(policy, /*delta_aware=*/true, log_path);
    ASSERT_NE(engine, nullptr);

    const std::vector<std::string> known = {
        "sun",       "sun java",    "solar system", "solar energy",
        "uk news",   "sun daily uk"};
    const std::vector<std::string> unknown = {"zzz qqq", "xylophone"};
    std::mt19937 rng(static_cast<uint32_t>(seed) * 17u +
                     static_cast<uint32_t>(policy));
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<size_t> pick_known(0, known.size() - 1);
    std::uniform_int_distribution<size_t> pick_unknown(0, unknown.size() - 1);
    std::uniform_int_distribution<UserId> pick_user(1, 6);

    size_t hits_verified = 0;
    int delta_n = 0;
    for (int op = 0; op < 220; ++op) {
      SCOPED_TRACE("op " + std::to_string(op));
      const int roll = pct(rng);
      if (roll < 6) {
        // Ingest a delta (buffered; the swap happens on the rebuild op).
        for (QueryLogRecord& r : FreshDelta(delta_n)) {
          ASSERT_TRUE(engine->Ingest(std::move(r)).ok());
        }
        ++delta_n;
        continue;
      }
      if (roll < 12) {
        // Swap: publish a new generation; the post-publish hook replays the
        // request log into the new generation's cache before this returns.
        ASSERT_TRUE(engine->index_manager().RebuildNow().ok());
        continue;
      }
      SuggestionRequest request;
      request.query =
          roll < 20 ? unknown[pick_unknown(rng)] : known[pick_known(rng)];
      request.user = roll % 3 == 0 ? kNoUser : pick_user(rng);
      request.timestamp = 400;
      ExplainRecord record;
      auto served = engine->Suggest(request, /*k=*/5, nullptr, &record);
      if (!served.ok()) {
        ASSERT_EQ(served.status().code(), StatusCode::kNotFound)
            << served.status().ToString();
        continue;
      }
      // The staleness property: what the engine just answered — from the
      // cache or not — must equal the cache-bypassed recompute pinned to
      // the same generation.
      ASSERT_EQ(record.fingerprint, FingerprintOf(*served));
      auto replayed = engine->Replay(EntryFor(request, 5, record));
      ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
      ASSERT_EQ(FingerprintOf(*replayed), record.fingerprint);
      if (record.cache_hit) ++hits_verified;
    }
    // The schedule must actually have exercised the property on cache hits
    // (head queries repeat; with warmup they hit right after swaps too).
    EXPECT_GT(hits_verified, 0u) << "schedule produced no cache hits";
    telemetry.AttachRequestLog(nullptr);
    std::remove(log_path.c_str());
  }
}

// The concurrent variant: reader threads storm the engine while a churn
// thread ingests deltas and swaps generations (each swap warming the new
// cache from the live request log). Afterwards every sampled log entry is
// replayed against its pinned generation and must reproduce the logged
// fingerprint bitwise. This is the TSAN stage's main course.
TEST(CacheStalenessOracleTest, ConcurrentChurnVerifiedByLogReplay) {
  const std::string log_path = StalenessLogPath("churn");
  std::remove(log_path.c_str());
  obs::ServingTelemetryOptions toptions;
  obs::ServingTelemetry& telemetry = obs::ServingTelemetry::Install(toptions);
  obs::RequestLogOptions loptions;
  loptions.path = log_path;
  loptions.sample_every = 1;
  loptions.slow_us = INT64_MAX;
  auto log = obs::RequestLog::Open(loptions);
  ASSERT_TRUE(log.ok());
  telemetry.AttachRequestLog(std::move(log).value());

  auto engine = BuildStalenessEngine(CachePolicyKind::kCar,
                                     /*delta_aware=*/true, log_path);
  ASSERT_NE(engine, nullptr);

  const uint64_t warmup_before =
      CounterValue("pqsda.cache.warmup_replayed_total");

  const std::vector<std::string> pool = {"sun",          "sun java",
                                         "solar system", "solar energy",
                                         "uk news",      "zzz qqq"};
  std::atomic<bool> done{false};
  std::thread churn([&engine, &done] {
    for (int cycle = 0; cycle < 4; ++cycle) {
      for (QueryLogRecord& r : FreshDelta(cycle)) {
        ASSERT_TRUE(engine->Ingest(std::move(r)).ok());
      }
      ASSERT_TRUE(engine->index_manager().RebuildNow().ok());
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&engine, &pool, t] {
      for (int i = 0; i < 120; ++i) {
        SuggestionRequest request;
        request.query = pool[(i + t) % pool.size()];
        request.user = (i % 2 == 0) ? static_cast<UserId>(1 + (i + t) % 6)
                                    : kNoUser;
        request.timestamp = 400;
        auto result = engine->Suggest(request, 5);
        if (!result.ok()) {
          ASSERT_EQ(result.status().code(), StatusCode::kNotFound)
              << result.status().ToString();
        }
      }
    });
  }
  churn.join();
  for (auto& r : readers) r.join();

  // Each of the four swaps ran a warmup replay on the rebuild thread.
  EXPECT_GT(CounterValue("pqsda.cache.warmup_replayed_total"), warmup_before);

  ASSERT_NE(telemetry.request_log(), nullptr);
  telemetry.request_log()->Flush();
  auto entries = obs::ReadRequestLog(log_path, /*max_entries=*/0);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_FALSE(entries->empty());

  size_t verified = 0;
  size_t hits_verified = 0;
  for (const RequestLogEntry& entry : *entries) {
    if (!entry.ok) continue;  // NotFound answers carry no fingerprint
    auto replayed = engine->Replay(entry);
    ASSERT_TRUE(replayed.ok())
        << "generation " << entry.generation << ": "
        << replayed.status().ToString();
    ASSERT_EQ(FingerprintOf(*replayed), entry.fingerprint)
        << "query \"" << entry.query << "\" generation " << entry.generation
        << (entry.cache_hit ? " (cache hit)" : " (miss)");
    ++verified;
    if (entry.cache_hit) ++hits_verified;
  }
  EXPECT_GT(verified, 0u);
  EXPECT_GT(hits_verified, 0u) << "storm produced no verifiable cache hits";
  telemetry.AttachRequestLog(nullptr);
  std::remove(log_path.c_str());
}

// Delta-aware retention: with raw edge weights (no global IQF coupling) a
// delta that only touches one graph component carries the untouched
// validation components' generations over, so warm entries whose reads all
// survived keep hitting across the swap — while the whole-generation mode
// starts cold after every swap.
//
// The corpus keeps the warm (java) cluster fully disconnected from the
// cooking cluster — no shared query, term, url or session — so the warm
// requests' expansions can only read java-cluster rows. The delta then
// introduces two brand-new queries with fresh vocabulary and a fresh url:
// under kRaw weighting no existing row changes at all, only the validation
// components that own the new query rows ("risotto milanese" → 3,
// "olive oil" → 2, by the partition hash) pick up the new generation —
// disjoint from the java owners ({5, 0, 4}), so every warm entry survives.
TEST(CacheStalenessOracleTest, DeltaAwareRetainsAcrossSwapWholeGenDoesNot) {
  const std::vector<std::string> warm = {"java download", "java update",
                                         "java install"};
  auto run = [&warm](bool delta_aware) {
    PqsdaEngineConfig config;
    config.weighting = EdgeWeighting::kRaw;  // fingerprints stay local
    config.personalize = false;
    config.cache_capacity = 64;
    config.cache_shards = 1;
    config.cache_policy = CachePolicyKind::kArc;
    config.cache_delta_aware = delta_aware;
    config.ingest.rebuild_min_records = SIZE_MAX;
    auto built = PqsdaEngine::Build(
        {
            {1, "java download", "www.java.com", 100},
            {1, "java update", "www.java.com", 150},
            {4, "java update", "java.sun.com", 100},
            {4, "java install", "java.sun.com", 130},
            {2, "pasta carbonara", "www.food.com", 100},
            {2, "pasta recipe", "www.food.com", 160},
            {5, "pasta recipe", "www.cooking.com", 90},
            {5, "tomato sauce", "www.cooking.com", 140},
        },
        config);
    EXPECT_TRUE(built.ok());
    std::unique_ptr<PqsdaEngine> engine = std::move(built).value();

    auto suggest = [&engine](const std::string& q) {
      SuggestionRequest request;
      request.query = q;
      request.timestamp = 400;
      return engine->Suggest(request, 5);
    };
    for (const std::string& q : warm) EXPECT_TRUE(suggest(q).ok());

    std::vector<QueryLogRecord> delta = {
        {31, "risotto milanese", "www.rice.it", 5000},
        {31, "olive oil", "www.rice.it", 5050},
    };
    for (QueryLogRecord& r : delta) {
      EXPECT_TRUE(engine->Ingest(std::move(r)).ok());
    }
    EXPECT_TRUE(engine->index_manager().RebuildNow().ok());

    const uint64_t hits_before = CounterValue("pqsda.cache.hits_total");
    for (const std::string& q : warm) EXPECT_TRUE(suggest(q).ok());
    return CounterValue("pqsda.cache.hits_total") - hits_before;
  };

  // Whole-generation keys can never hit across the swap.
  EXPECT_EQ(run(/*delta_aware=*/false), 0u);
  // Delta-aware retention serves every warm query from cache.
  EXPECT_EQ(run(/*delta_aware=*/true), warm.size());
}

}  // namespace
}  // namespace pqsda
