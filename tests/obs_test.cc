// The observability subsystem: counter/gauge/histogram semantics,
// percentile math against known distributions, nested span trees,
// thread-safety of concurrent recording, and the JSON/Prometheus exports
// (golden output). run_benches.sh additionally runs this binary under
// ThreadSanitizer (-DPQSDA_ENABLE_TSAN=ON) to race-check the atomic
// counters and the thread-local span stack.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pqsda::obs {
namespace {

// ------------------------------------------------------------ metrics ----

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

TEST(HistogramTest, CountsSumAndBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  h.Observe(5.0);
  h.Observe(10.0);  // bounds are inclusive: lands in the le=10 bucket
  h.Observe(15.0);
  h.Observe(100.0);  // overflow
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 130.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 32.5);
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, QuantilesOfUniformDistribution) {
  // 1..1000 into deciles: interpolation should land within one bucket width
  // of the exact quantile.
  std::vector<double> bounds;
  for (int b = 100; b <= 1000; b += 100) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 1000; ++v) h.Observe(v);
  EXPECT_NEAR(h.Quantile(0.50), 500.0, 100.0);
  EXPECT_NEAR(h.Quantile(0.95), 950.0, 100.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 100.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  // All mass in the overflow bucket reports the largest finite bound.
  Histogram h({1.0, 2.0});
  h.Observe(50.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
}

TEST(HistogramTest, SkewedDistributionPercentiles) {
  // 99 fast observations and 1 slow one: p50 stays in the fast bucket,
  // p99+ reaches the slow one.
  Histogram h({10.0, 100.0, 1000.0});
  for (int i = 0; i < 99; ++i) h.Observe(5.0);
  h.Observe(500.0);
  EXPECT_LE(h.Quantile(0.50), 10.0);
  EXPECT_GT(h.Quantile(0.995), 100.0);
}

TEST(HistogramTest, ConcurrentObserveKeepsTotalCount) {
  Histogram h(Histogram::DefaultLatencyBoundsUs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((t * 37 + i) % 5000));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t c : h.BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, h.Count());
}

TEST(MetricsRegistryTest, ConcurrentCounterIncrements) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Lookup inside the loop exercises the registry lock path too.
      Counter& c = reg.GetCounter("shared");
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.GetCounter("shared").Value(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, GetReturnsSameInstanceAndResetKeepsIt) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment(7);
  reg.Reset();
  EXPECT_EQ(b.Value(), 0u);
  b.Increment();
  EXPECT_EQ(reg.GetCounter("x").Value(), 1u);
}

TEST(MetricsRegistryTest, JsonExportGolden) {
  MetricsRegistry reg;
  reg.GetCounter("b.requests").Increment(3);
  reg.GetGauge("a.residual").Set(0.25);
  std::vector<double> bounds = {1.0, 2.0};
  Histogram& h = reg.GetHistogram("c.latency", &bounds);
  h.Observe(1.0);
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(5.0);
  EXPECT_EQ(reg.ExportJson(),
            "{\"counters\":{\"b.requests\":3},"
            "\"gauges\":{\"a.residual\":0.25},"
            "\"histograms\":{\"c.latency\":{\"count\":4,\"sum\":9,"
            "\"mean\":2.25,\"p50\":1,\"p95\":2,\"p99\":2}}}");
}

TEST(MetricsRegistryTest, PrometheusExportGolden) {
  MetricsRegistry reg;
  reg.GetCounter("pqsda.suggest.requests_total").Increment(5);
  reg.GetGauge("pqsda.solver.last_residual").Set(0.5);
  std::vector<double> bounds = {1.0, 2.0};
  Histogram& h = reg.GetHistogram("pqsda.latency_us", &bounds);
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(10.0);
  EXPECT_EQ(reg.ExportPrometheus(),
            "# TYPE pqsda_latency_us histogram\n"
            "pqsda_latency_us_bucket{le=\"1\"} 1\n"
            "pqsda_latency_us_bucket{le=\"2\"} 2\n"
            "pqsda_latency_us_bucket{le=\"+Inf\"} 3\n"
            "pqsda_latency_us_sum 12\n"
            "pqsda_latency_us_count 3\n"
            "# TYPE pqsda_solver_last_residual gauge\n"
            "pqsda_solver_last_residual 0.5\n"
            "# TYPE pqsda_suggest_requests_total counter\n"
            "pqsda_suggest_requests_total 5\n");
}

TEST(MetricsRegistryTest, PrometheusCumulativeBucketsRoundTrip) {
  // The exported cumulative bucket counts must reconstruct the per-bucket
  // counts exactly (what a Prometheus scraper does).
  MetricsRegistry reg;
  std::vector<double> bounds = {10.0, 20.0, 30.0};
  Histogram& h = reg.GetHistogram("rt", &bounds);
  for (double v : {5.0, 15.0, 15.0, 25.0, 99.0}) h.Observe(v);

  std::string text = reg.ExportPrometheus();
  std::vector<uint64_t> cumulative;
  size_t pos = 0;
  while ((pos = text.find("rt_bucket{le=", pos)) != std::string::npos) {
    size_t space = text.find("} ", pos);
    size_t eol = text.find('\n', space);
    cumulative.push_back(
        std::stoull(text.substr(space + 2, eol - space - 2)));
    pos = eol;
  }
  ASSERT_EQ(cumulative.size(), 4u);  // 3 bounds + +Inf
  std::vector<uint64_t> per_bucket = h.BucketCounts();
  uint64_t prev = 0;
  for (size_t i = 0; i < cumulative.size(); ++i) {
    EXPECT_EQ(cumulative[i] - prev, per_bucket[i]) << "bucket " << i;
    prev = cumulative[i];
  }
  EXPECT_EQ(cumulative.back(), h.Count());
}

// -------------------------------------------------------------- spans ----

TEST(TraceTest, NoCollectorMeansInactiveSpans) {
  EXPECT_FALSE(TraceActive());
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
}

TEST(TraceTest, NestedSpansFormTree) {
  TraceCollector collector("root");
  EXPECT_TRUE(TraceActive());
  {
    TraceSpan outer("outer");
    outer.Annotate("k", std::string("v"));
    {
      TraceSpan inner1("inner1");
      WallTimer spin;
      while (spin.ElapsedMicros() < 200) {
      }
    }
    { TraceSpan inner2("inner2"); }
  }
  { TraceSpan sibling("sibling"); }
  SpanNode root = collector.Take();
  EXPECT_FALSE(TraceActive());

  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 2u);
  const SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->name, "inner1");
  EXPECT_EQ(outer.children[1]->name, "inner2");
  EXPECT_EQ(root.children[1]->name, "sibling");
  EXPECT_EQ(root.TotalSpans(), 5u);

  // inner1 spun for 200us, so its duration and every ancestor's must be
  // at least that; child time is contained in the parent.
  EXPECT_GE(outer.children[0]->duration_us(), 200);
  EXPECT_GE(outer.duration_ns, outer.children[0]->duration_ns);
  EXPECT_GE(root.duration_ns, outer.duration_ns);
  EXPECT_GE(outer.ChildDurationNs(), outer.children[0]->duration_ns);

  // Find is depth-first over the whole tree.
  ASSERT_NE(root.Find("inner2"), nullptr);
  EXPECT_EQ(root.Find("inner2")->name, "inner2");
  EXPECT_EQ(root.Find("absent"), nullptr);
  ASSERT_EQ(outer.annotations.size(), 1u);
  EXPECT_EQ(outer.annotations[0].first, "k");
  EXPECT_EQ(outer.annotations[0].second, "v");
}

TEST(TraceTest, CollectorsNestAndRestore) {
  TraceCollector outer("outer");
  {
    TraceSpan before("before");
  }
  {
    TraceCollector inner("inner");
    {
      TraceSpan span("in_inner");
      EXPECT_TRUE(span.active());
    }
    SpanNode tree = inner.Take();
    EXPECT_EQ(tree.children.size(), 1u);
  }
  // After the inner collector finishes, spans attach to the outer trace
  // again.
  { TraceSpan after("after"); }
  SpanNode root = outer.Take();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "before");
  EXPECT_EQ(root.children[1]->name, "after");
}

TEST(TraceTest, ThreadsTraceIndependently) {
  // Each thread installs its own collector; spans must never cross threads.
  constexpr int kThreads = 4;
  std::vector<SpanNode> roots(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &roots] {
      TraceCollector collector("thread" + std::to_string(t));
      for (int i = 0; i < 50; ++i) {
        TraceSpan span("work");
        TraceSpan nested("nested");
      }
      roots[t] = collector.Take();
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(roots[t].name, "thread" + std::to_string(t));
    EXPECT_EQ(roots[t].children.size(), 50u);
    EXPECT_EQ(roots[t].TotalSpans(), 101u);
  }
}

TEST(TraceTest, RenderAndJson) {
  TraceCollector collector("root");
  {
    TraceSpan span("stage");
    span.Annotate("n", static_cast<int64_t>(3));
  }
  SpanNode root = collector.Take();
  std::string rendered = root.Render();
  EXPECT_NE(rendered.find("root"), std::string::npos);
  EXPECT_NE(rendered.find("stage"), std::string::npos);
  EXPECT_NE(rendered.find("n=3"), std::string::npos);

  std::string json = root.ToJson();
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{\"name\":\"stage\""),
            std::string::npos);
  EXPECT_NE(json.find("\"annotations\":{\"n\":\"3\"}"), std::string::npos);
}

TEST(ScopedTimerTest, RecordsIntoHistogramOnDestruction) {
  Histogram h(Histogram::DefaultLatencyBoundsUs());
  {
    ScopedTimer timer(h);
    WallTimer spin;
    while (spin.ElapsedMicros() < 100) {
    }
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Sum(), 100.0);  // at least the 100us spin, in microseconds
  { ScopedTimer noop(nullptr); }
}

TEST(WallTimerTest, ElapsedNanosIsMonotoneAndFinerThanMicros) {
  WallTimer t;
  WallTimer spin;
  while (spin.ElapsedMicros() < 10) {
  }
  int64_t micros = t.ElapsedMicros();
  int64_t nanos = t.ElapsedNanos();  // read second: must be >= micros * 1000
  EXPECT_GE(nanos, 10000);
  EXPECT_GE(nanos, micros * 1000);
  EXPECT_LE(t.ElapsedNanos() / 1000000000.0, t.ElapsedSeconds() + 1.0);
}

}  // namespace
}  // namespace pqsda::obs
