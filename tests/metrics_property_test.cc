// Parameterized invariants of the evaluation metrics: every metric must be
// bounded, symmetric where the definition says so, and stable under
// permutations the definition ignores — for any seed, not just the fixtures.

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/diversity.h"
#include "eval/hpr.h"
#include "eval/ppr.h"
#include "eval/relevance.h"
#include "eval/synthetic_adapters.h"
#include "rank/borda.h"

namespace pqsda {
namespace {

class MetricProperty : public testing::TestWithParam<uint64_t> {
 protected:
  MetricProperty() {
    GeneratorConfig config;
    config.seed = GetParam();
    config.num_users = 25;
    config.sessions_per_user_min = 4;
    config.sessions_per_user_max = 8;
    config.facet_config.num_facets = 12;
    config.facet_config.queries_per_facet = 40;
    data = std::make_unique<SyntheticDataset>(GenerateLog(config));
    pages = std::make_unique<ClickedPages>(ClickedPages::Build(data->records));
    sim = std::make_unique<SyntheticPageSimilarity>(data->facets);
    cats = std::make_unique<SyntheticQueryCategories>(*data);
    // A random suggestion list drawn from the log's queries.
    Rng rng(GetParam() + 1);
    for (int i = 0; i < 10; ++i) {
      size_t idx = rng.NextBounded(data->records.size());
      list.push_back(Suggestion{data->records[idx].query,
                                10.0 - static_cast<double>(i)});
    }
  }

  std::unique_ptr<SyntheticDataset> data;
  std::unique_ptr<ClickedPages> pages;
  std::unique_ptr<SyntheticPageSimilarity> sim;
  std::unique_ptr<SyntheticQueryCategories> cats;
  std::vector<Suggestion> list;
};

TEST_P(MetricProperty, DiversityBoundedAndSymmetric) {
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      double d = QueryPairDiversity(list[i].query, list[j].query, *pages,
                                    *sim);
      EXPECT_GE(d, -1e-9);
      EXPECT_LE(d, 1.0 + 1e-9);
      double d_rev = QueryPairDiversity(list[j].query, list[i].query, *pages,
                                        *sim);
      EXPECT_NEAR(d, d_rev, 1e-12);
    }
  }
  for (size_t k = 0; k <= 10; ++k) {
    double dl = ListDiversity(list, k, *pages, *sim);
    EXPECT_GE(dl, 0.0);
    EXPECT_LE(dl, 1.0 + 1e-9);
  }
}

TEST_P(MetricProperty, ListDiversityPermutationInvariant) {
  // Eq. 33 sums over all ordered pairs of the prefix -> invariant under
  // permutations of the same prefix set.
  auto shuffled = list;
  Rng rng(GetParam() + 2);
  std::vector<Suggestion> prefix(shuffled.begin(), shuffled.begin() + 5);
  rng.Shuffle(prefix);
  std::copy(prefix.begin(), prefix.end(), shuffled.begin());
  EXPECT_NEAR(ListDiversity(list, 5, *pages, *sim),
              ListDiversity(shuffled, 5, *pages, *sim), 1e-12);
}

TEST_P(MetricProperty, RelevanceBoundedAndSymmetric) {
  for (size_t i = 0; i < 4; ++i) {
    double r = QueryPairRelevance(list[0].query, list[i].query,
                                  data->taxonomy, *cats);
    double r_rev = QueryPairRelevance(list[i].query, list[0].query,
                                      data->taxonomy, *cats);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-12);
    EXPECT_NEAR(r, r_rev, 1e-12);
  }
  // Self-relevance of a canonical query is 1.
  EXPECT_NEAR(QueryPairRelevance(list[0].query, list[0].query,
                                 data->taxonomy, *cats),
              1.0, 1e-12);
}

TEST_P(MetricProperty, PprBounded) {
  std::vector<std::string> titles;
  for (const auto& rec : data->records) {
    if (!rec.has_click()) continue;
    const UrlDocument* doc = data->facets.FindDocument(rec.clicked_url);
    if (doc != nullptr) titles.push_back(doc->title);
    if (titles.size() >= 5) break;
  }
  for (size_t k = 0; k <= 10; ++k) {
    double p = ListPpr(list, k, titles);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
  }
}

TEST_P(MetricProperty, HprAlwaysOnSixPointScale) {
  SimulatedRater rater(data->taxonomy, data->facets, 0.3, GetParam());
  for (const auto& s : list) {
    double r = rater.Rate(0, s.query);
    // Must be exactly one of the six scale points.
    double scaled = r * 5.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST_P(MetricProperty, BordaScoresMonotoneInRank) {
  auto out = BordaAggregate({list});
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].score, out[i].score);
  }
  // Aggregating a list with itself preserves its order.
  auto doubled = BordaAggregate({list, list});
  for (size_t i = 0; i < std::min<size_t>(out.size(), doubled.size()); ++i) {
    EXPECT_EQ(out[i].query, doubled[i].query);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty,
                         testing::Values(11, 137, 4242, 99991));

}  // namespace
}  // namespace pqsda
