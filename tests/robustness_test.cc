// Robustness tests: random and adversarial inputs must produce clean Status
// errors (or safe empty results), never crashes or undefined behavior —
// plus the degradation-ladder determinism property (a rung reached by
// budget is bitwise the rung reached by configuration).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "core/profile_store.h"
#include "core/pqsda_engine.h"
#include "log/cleaner.h"
#include "log/log_io.h"
#include "log/sessionizer.h"
#include "synthetic/generator.h"
#include "text/tokenizer.h"

namespace pqsda {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = rng.NextBounded(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Printable-ish plus tabs/newlines to stress field splitting.
    const char* alphabet =
        "abc123 \t\\|/.:-_~!@#$%^&*()";
    s.push_back(alphabet[rng.NextBounded(27)]);
  }
  return s;
}

TEST(RobustnessTest, ParseLogLineNeverCrashes) {
  Rng rng(1);
  int ok_count = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string line = RandomBytes(rng, 60);
    auto rec = ParseLogLine(line);
    if (rec.ok()) {
      ++ok_count;
      EXPECT_FALSE(rec->query.find('\n') != std::string::npos);
    } else {
      EXPECT_FALSE(rec.status().message().empty());
    }
  }
  // Random text parses only rarely; the point is that both paths are clean.
  EXPECT_LT(ok_count, 2000);
}

TEST(RobustnessTest, TokenizerHandlesArbitraryBytes) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    std::string text = RandomBytes(rng, 80);
    auto tokens = Tokenize(text);
    for (const auto& t : tokens) {
      EXPECT_FALSE(t.empty());
      for (char c : t) {
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
      }
    }
  }
}

TEST(RobustnessTest, ReadLogTsvRejectsGarbageFile) {
  std::string path = testing::TempDir() + "/garbage.tsv";
  {
    std::ofstream out(path);
    out << "complete\tgarbage\nwith\x01binary\x02bytes\tand\ttabs\teverywhere\n";
  }
  auto read = ReadLogTsv(path);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RobustnessTest, ProfileStoreLoadGarbage) {
  Rng rng(3);
  std::string path = testing::TempDir() + "/garbage_profiles.tsv";
  for (int round = 0; round < 20; ++round) {
    {
      std::ofstream out(path);
      for (int l = 0; l < 5; ++l) out << RandomBytes(rng, 40) << '\n';
    }
    auto store = ProfileStore::Load(path);
    if (store.ok()) {
      // Extremely unlikely but legal: whatever parsed must be well-formed.
      for (size_t u = 0; u < 4; ++u) {
        const UserProfile* p = store->Find(static_cast<UserId>(u));
        if (p != nullptr) {
          EXPECT_FALSE(p->theta.empty());
        }
      }
    }
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, CleanerHandlesAdversarialRecords) {
  std::vector<QueryLogRecord> records;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    QueryLogRecord rec;
    rec.user_id = static_cast<UserId>(rng.NextBounded(5));
    rec.query = RandomBytes(rng, 150);
    rec.clicked_url = rng.NextDouble() < 0.5 ? RandomBytes(rng, 30) : "";
    rec.timestamp = static_cast<int64_t>(rng.NextBounded(1000000));
    records.push_back(std::move(rec));
  }
  CleanerStats stats;
  auto cleaned = CleanLog(records, CleanerOptions{}, &stats);
  EXPECT_EQ(stats.input_records, 500u);
  EXPECT_EQ(stats.output_records, cleaned.size());
  for (const auto& rec : cleaned) {
    EXPECT_FALSE(rec.query.empty());
    EXPECT_LE(rec.query.size(), 100u);
  }
  // Sessionizing arbitrary cleaned output must partition all records.
  auto sessions = Sessionize(cleaned);
  size_t covered = 0;
  for (const auto& s : sessions) covered += s.size();
  EXPECT_EQ(covered, cleaned.size());
}

TEST(RobustnessTest, SessionizerHandlesTimestampEdges) {
  std::vector<QueryLogRecord> records = {
      {0, "a", "", INT64_MIN / 2},
      {0, "b", "", 0},
      {0, "c", "", INT64_MAX / 2},
  };
  SortByUserAndTime(records);
  auto sessions = Sessionize(records);
  EXPECT_EQ(sessions.size(), 3u);  // enormous gaps split everything
}

// ------------------------------------ degradation-ladder determinism ----

// Property: the degradation ladder is a pure function of configuration and
// budget, never of wall-clock races. A request whose deadline budget lands
// in rung r's band (on a frozen fake clock, so nothing actually elapses)
// must return a list bitwise identical to the same request served by an
// engine configured with min_rung = r and no deadline at all.
TEST(LadderDeterminismProperty, BudgetRungMatchesConfiguredRungBitwise) {
  FaultInjector& injector = FaultInjector::Default();
  injector.Reset();
  injector.SetClock(0);

  // Deterministic build: personalization off (no Gibbs sampling), same
  // records for both engines.
  GeneratorConfig gen;
  gen.num_users = 40;
  auto data = GenerateLog(gen);

  PqsdaEngineConfig base;
  base.personalize = false;
  auto budget_engine = PqsdaEngine::Build(data.records, base);
  ASSERT_TRUE(budget_engine.ok());

  // Budgets (on the frozen clock) landing squarely inside each rung's band
  // of the default thresholds: rung 1 below 250ms, rung 2 below 25ms.
  const struct {
    size_t rung;
    int64_t budget_ns;
  } kBands[] = {
      {1, 100'000'000},  // 100ms -> truncated solve
      {2, 10'000'000},   // 10ms  -> walk-only
  };

  Rng rng(7);
  std::vector<SuggestionRequest> requests;
  for (int i = 0; i < 10; ++i) {
    const QueryLogRecord& rec =
        data.records[rng.NextBounded(data.records.size())];
    SuggestionRequest request;
    request.query = rec.query;
    request.timestamp = rec.timestamp + 60;
    requests.push_back(std::move(request));
  }

  for (const auto& band : kBands) {
    PqsdaEngineConfig floored = base;
    floored.robustness.min_rung = band.rung;
    auto floored_engine = PqsdaEngine::Build(data.records, floored);
    ASSERT_TRUE(floored_engine.ok());

    for (size_t i = 0; i < requests.size(); ++i) {
      SCOPED_TRACE("rung " + std::to_string(band.rung) + " request " +
                   std::to_string(i) + " \"" + requests[i].query + "\"");
      // Budget path: fake-clock token with the band's remaining budget. The
      // clock never advances, so the token shapes the rung decision but
      // never expires mid-request.
      CancelToken token(injector.ClockFn());
      token.SetDeadlineAfter(band.budget_ns);
      SuggestionRequest budget_request = requests[i];
      budget_request.cancel = &token;
      SuggestStats budget_stats;
      auto by_budget = (*budget_engine)->Suggest(budget_request, 8,
                                                 &budget_stats);

      // Configuration path: no deadline, rung pinned by min_rung.
      SuggestStats floored_stats;
      auto by_config = (*floored_engine)->Suggest(requests[i], 8,
                                                  &floored_stats);

      ASSERT_EQ(by_budget.ok(), by_config.ok());
      if (!by_budget.ok()) {
        EXPECT_EQ(by_budget.status().code(), by_config.status().code());
        continue;
      }
      EXPECT_EQ(budget_stats.degradation_rung, band.rung);
      EXPECT_EQ(floored_stats.degradation_rung, band.rung);
      // Bitwise: same queries, same scores, same order.
      EXPECT_EQ(*by_budget, *by_config);
    }
  }
  injector.Reset();
}

}  // namespace
}  // namespace pqsda
