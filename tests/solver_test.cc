#include <cmath>

#include <gtest/gtest.h>

#include "graph/multi_bipartite.h"
#include "solver/linear_solvers.h"
#include "solver/regularization.h"

namespace pqsda {
namespace {

// A small strictly diagonally dominant SPD system.
CsrMatrix TestSystem() {
  return CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 4.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 4.0},
             {1, 2, -1.0}, {2, 1, -1.0}, {2, 2, 4.0}});
}

std::vector<double> TestRhs() { return {1.0, 2.0, 3.0}; }

void ExpectSolves(const SolverResult& result, const CsrMatrix& a,
                  const std::vector<double>& x, const std::vector<double>& b) {
  EXPECT_TRUE(result.converged);
  EXPECT_LT(RelativeResidual(a, x, b), 1e-7);
}

TEST(SolverTest, JacobiSolves) {
  auto a = TestSystem();
  auto b = TestRhs();
  std::vector<double> x;
  auto result = JacobiSolve(a, b, x, SolverOptions{});
  ExpectSolves(result, a, x, b);
}

TEST(SolverTest, GaussSeidelSolves) {
  auto a = TestSystem();
  auto b = TestRhs();
  std::vector<double> x;
  auto result = GaussSeidelSolve(a, b, x, SolverOptions{});
  ExpectSolves(result, a, x, b);
}

TEST(SolverTest, ConjugateGradientSolves) {
  auto a = TestSystem();
  auto b = TestRhs();
  std::vector<double> x;
  auto result = ConjugateGradientSolve(a, b, x, SolverOptions{});
  ExpectSolves(result, a, x, b);
}

TEST(SolverTest, SolversAgree) {
  auto a = TestSystem();
  auto b = TestRhs();
  std::vector<double> xj, xg, xc;
  JacobiSolve(a, b, xj, SolverOptions{});
  GaussSeidelSolve(a, b, xg, SolverOptions{});
  ConjugateGradientSolve(a, b, xc, SolverOptions{});
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(xj[i], xg[i], 1e-6);
    EXPECT_NEAR(xj[i], xc[i], 1e-6);
  }
}

TEST(SolverTest, GaussSeidelFasterThanJacobi) {
  auto a = TestSystem();
  auto b = TestRhs();
  std::vector<double> xj, xg;
  auto rj = JacobiSolve(a, b, xj, SolverOptions{});
  auto rg = GaussSeidelSolve(a, b, xg, SolverOptions{});
  EXPECT_LE(rg.iterations, rj.iterations);
}

TEST(SolverTest, ReportsNonConvergence) {
  auto a = TestSystem();
  auto b = TestRhs();
  std::vector<double> x;
  SolverOptions opts;
  opts.max_iterations = 1;
  opts.tolerance = 1e-15;
  auto result = JacobiSolve(a, b, x, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 1u);
}

// Regression: an exactly-zero right-hand side used to iterate all the way
// to max_iterations chasing a residual that was already zero. Every solver
// must return the converged zero iterate without a single sweep.
TEST(SolverTest, ZeroRhsReturnsConvergedZeroWithoutIterating) {
  auto a = TestSystem();
  std::vector<double> b = {0.0, 0.0, 0.0};
  SolverOptions opts;
  opts.tolerance = 1e-15;  // would take many sweeps if it iterated at all

  auto check = [&](SolverResult result, const std::vector<double>& x,
                   const char* solver) {
    EXPECT_TRUE(result.converged) << solver;
    EXPECT_EQ(result.iterations, 0u) << solver;
    EXPECT_DOUBLE_EQ(result.relative_residual, 0.0) << solver;
    ASSERT_EQ(x.size(), b.size()) << solver;
    for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0) << solver;
  };

  std::vector<double> x = {9.0, 9.0, 9.0};  // stale warm start must be reset
  check(JacobiSolve(a, b, x, opts), x, "jacobi");
  x = {9.0, 9.0, 9.0};
  check(GaussSeidelSolve(a, b, x, opts), x, "gauss-seidel");
  x = {9.0, 9.0, 9.0};
  check(ConjugateGradientSolve(a, b, x, opts), x, "cg");
  x = {9.0, 9.0, 9.0};
  check(JacobiSolveParallel(a, b, x, opts, 2, nullptr), x, "jacobi-parallel");
}

// A nonzero-but-tiny rhs must NOT take the zero shortcut.
TEST(SolverTest, TinyNonzeroRhsStillSolves) {
  auto a = TestSystem();
  std::vector<double> b = {0.0, 1e-30, 0.0};
  std::vector<double> x;
  auto result = JacobiSolve(a, b, x, SolverOptions{});
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_NE(x[1], 0.0);
}

TEST(SolverTest, IdentitySolvesInstantly) {
  auto a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  std::vector<double> b = {5.0, -3.0};
  std::vector<double> x;
  auto result = GaussSeidelSolve(a, b, x, SolverOptions{});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 5.0, 1e-9);
  EXPECT_NEAR(x[1], -3.0, 1e-9);
}

// ---------------------------------------------------- Regularization ----

std::vector<QueryLogRecord> TableOneLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 120},
      {1, "jvm download", "", 200},
      {2, "sun", "www.suncellular.com", 100},
      {2, "solar cell", "en.wikipedia.org", 160},
      {3, "sun oracle", "www.oracle.com", 100},
      {3, "java", "www.java.com", 172},
  };
}

CompactRepresentation BuildRep(const MultiBipartite& mb, StringId input) {
  CompactBuilder builder(mb);
  auto rep = builder.Build(input, {}, CompactBuilderOptions{10, 4});
  EXPECT_TRUE(rep.ok());
  return std::move(rep).value();
}

TEST(RegularizationTest, F0SeedsInputAtOne) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  StringId sun = mb.QueryId("sun");
  auto rep = BuildRep(mb, sun);
  auto f0 = BuildF0(rep, sun, 1000, {}, 0.001);
  EXPECT_DOUBLE_EQ(f0[rep.local_index.at(sun)], 1.0);
  double total = 0.0;
  for (double v : f0) total += v;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(RegularizationTest, F0ContextDecaysWithAge) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  StringId sun = mb.QueryId("sun");
  StringId java = mb.QueryId("java");
  StringId solar = mb.QueryId("solar cell");
  auto rep = BuildRep(mb, sun);
  // java is 100s old, solar 1000s old at input time 2000.
  auto f0 = BuildF0(rep, sun, 2000, {{java, 1900}, {solar, 1000}}, 0.001);
  double f_java = f0[rep.local_index.at(java)];
  double f_solar = f0[rep.local_index.at(solar)];
  EXPECT_GT(f_java, f_solar);
  EXPECT_NEAR(f_java, std::exp(-0.1), 1e-9);
  EXPECT_NEAR(f_solar, std::exp(-1.0), 1e-9);
}

TEST(RegularizationTest, SystemMatrixDiagonallyDominant) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  auto rep = BuildRep(mb, mb.QueryId("sun"));
  auto system = AssembleRegularizationSystem(rep, {0.4, 0.4, 0.4});
  for (size_t i = 0; i < system.rows(); ++i) {
    double diag = system.At(i, i);
    double off = 0.0;
    auto idx = system.RowIndices(i);
    auto val = system.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      if (idx[k] != i) off += std::abs(val[k]);
    }
    EXPECT_GT(diag, off);
  }
}

TEST(RegularizationTest, SolveSpreadsRelevanceToNeighbors) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  StringId sun = mb.QueryId("sun");
  auto rep = BuildRep(mb, sun);
  auto f0 = BuildF0(rep, sun, 1000, {}, 0.001);
  auto f = SolveRegularization(rep, f0, RegularizationOptions{});
  ASSERT_TRUE(f.ok());
  // The input keeps the highest relevance.
  uint32_t sun_local = rep.local_index.at(sun);
  for (size_t i = 0; i < f->size(); ++i) {
    EXPECT_LE((*f)[i], (*f)[sun_local] + 1e-12);
  }
  // Related queries received strictly positive mass.
  StringId sunjava = mb.QueryId("sun java");
  EXPECT_GT((*f)[rep.local_index.at(sunjava)], 0.0);
}

TEST(RegularizationTest, AllSolverKindsAgree) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  StringId sun = mb.QueryId("sun");
  auto rep = BuildRep(mb, sun);
  auto f0 = BuildF0(rep, sun, 1000, {}, 0.001);
  std::vector<std::vector<double>> results;
  for (SolverKind kind : {SolverKind::kJacobi, SolverKind::kGaussSeidel,
                          SolverKind::kConjugateGradient}) {
    RegularizationOptions opts;
    opts.solver = kind;
    auto f = SolveRegularization(rep, f0, opts);
    ASSERT_TRUE(f.ok());
    results.push_back(std::move(f).value());
  }
  for (size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_NEAR(results[0][i], results[1][i], 1e-5);
    EXPECT_NEAR(results[0][i], results[2][i], 1e-5);
  }
}

TEST(RegularizationTest, MismatchedF0Rejected) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  auto rep = BuildRep(mb, mb.QueryId("sun"));
  auto f = SolveRegularization(rep, {1.0}, RegularizationOptions{});
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pqsda
