// Property-style tests: parameterized sweeps asserting invariants that must
// hold for every configuration, not just the defaults.

#include <cmath>
#include <memory>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "graph/compact_builder.h"
#include "graph/multi_bipartite.h"
#include "log/sessionizer.h"
#include "solver/linear_solvers.h"
#include "solver/regularization.h"
#include "suggest/hitting_time_suggester.h"
#include "synthetic/generator.h"

namespace pqsda {
namespace {

// ---------------------------------------------- Zipf sweep ----

class ZipfProperty : public testing::TestWithParam<double> {};

TEST_P(ZipfProperty, PmfNormalizedAndMonotone) {
  ZipfSampler z(64, GetParam());
  double total = 0.0;
  for (size_t i = 0; i < z.size(); ++i) {
    total += z.Pmf(i);
    if (i > 0) {
      EXPECT_LE(z.Pmf(i), z.Pmf(i - 1) + 1e-15);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfProperty,
                         testing::Values(0.0, 0.5, 1.0, 1.5, 2.5));

// ----------------------------------- Regularization alpha sweep ----

class AlphaProperty : public testing::TestWithParam<double> {
 protected:
  static const SyntheticDataset& data() {
    static SyntheticDataset* d = [] {
      GeneratorConfig config;
      config.num_users = 25;
      config.sessions_per_user_min = 5;
      config.sessions_per_user_max = 8;
      config.facet_config.num_facets = 10;
      return new SyntheticDataset(GenerateLog(config));
    }();
    return *d;
  }
};

TEST_P(AlphaProperty, SystemSolvableAndBounded) {
  const double alpha = GetParam();
  auto sessions = Sessionize(data().records);
  auto mb = MultiBipartite::Build(data().records, sessions,
                                  EdgeWeighting::kCfIqf);
  CompactBuilder builder(mb);
  StringId q = mb.QueryId(data().records[0].query);
  ASSERT_NE(q, kInvalidStringId);
  auto rep = builder.Build(q, {}, CompactBuilderOptions{80, 4});
  ASSERT_TRUE(rep.ok());
  auto f0 = BuildF0(*rep, q, 0, {}, 0.001);
  RegularizationOptions opts;
  opts.alpha = {alpha, alpha, alpha};
  auto f = SolveRegularization(*rep, f0, opts);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  // F* entries stay within [0, 1]-ish bounds (diffusion of a unit seed).
  for (double v : *f) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
  // The input query keeps the maximum.
  uint32_t local = rep->local_index.at(q);
  for (double v : *f) EXPECT_LE(v, (*f)[local] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaProperty,
                         testing::Values(0.1, 0.4, 0.8, 1.5, 3.0));

// ----------------------------------------- Hitting time horizon ----

class HorizonProperty : public testing::TestWithParam<size_t> {};

TEST_P(HorizonProperty, HittingTimeMonotoneInHorizonAndBounded) {
  // Chain 0 <- 1 <- 2 ... line graph over URL hops.
  std::vector<QueryLogRecord> recs;
  for (int i = 0; i < 6; ++i) {
    recs.push_back({0, "q" + std::to_string(i),
                    "u" + std::to_string(i) + ".com", i * 10});
    recs.push_back({0, "q" + std::to_string(i + 1),
                    "u" + std::to_string(i) + ".com", i * 10 + 5});
  }
  auto cg = ClickGraph::Build(recs, EdgeWeighting::kRaw);
  StringId q0 = cg.QueryId("q0");
  const size_t horizon = GetParam();
  auto h = BipartiteHittingTime(cg.graph().query_to_object(),
                                cg.graph().object_to_query(), {q0}, horizon);
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_GE(h[i], 0.0);
    EXPECT_LE(h[i], static_cast<double>(horizon));
  }
  EXPECT_DOUBLE_EQ(h[q0], 0.0);
  // Monotone: longer horizons only increase the (truncated) hitting time.
  auto h2 = BipartiteHittingTime(cg.graph().query_to_object(),
                                 cg.graph().object_to_query(), {q0},
                                 horizon * 2);
  for (size_t i = 0; i < h.size(); ++i) EXPECT_GE(h2[i] + 1e-9, h[i]);
}

INSTANTIATE_TEST_SUITE_P(Horizons, HorizonProperty,
                         testing::Values(2, 8, 16, 40));

// --------------------------------------- Compact size sweep ----

class CompactSizeProperty : public testing::TestWithParam<size_t> {
 protected:
  static const SyntheticDataset& data() {
    static SyntheticDataset* d = [] {
      GeneratorConfig config;
      config.num_users = 30;
      config.sessions_per_user_min = 5;
      config.sessions_per_user_max = 8;
      return new SyntheticDataset(GenerateLog(config));
    }();
    return *d;
  }
};

TEST_P(CompactSizeProperty, SizeRespectedAndStochastic) {
  auto sessions = Sessionize(data().records);
  auto mb =
      MultiBipartite::Build(data().records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  StringId q = mb.QueryId(data().facets.concept_tokens()[0]);
  ASSERT_NE(q, kInvalidStringId);
  auto rep = builder.Build(q, {}, CompactBuilderOptions{GetParam(), 5});
  ASSERT_TRUE(rep.ok());
  EXPECT_LE(rep->size(), GetParam());
  EXPECT_GE(rep->size(), 1u);
  for (BipartiteKind kind : kAllBipartites) {
    const CsrMatrix& p = rep->P(kind);
    for (size_t i = 0; i < p.rows(); ++i) {
      double s = p.RowSum(i);
      EXPECT_TRUE(std::abs(s - 1.0) < 1e-9 || s == 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompactSizeProperty,
                         testing::Values(10, 50, 150, 400));

// -------------------------------------------- Weighting invariance ----

class WeightingProperty
    : public testing::TestWithParam<EdgeWeighting> {};

TEST_P(WeightingProperty, GraphStructurePreservedUnderWeighting) {
  GeneratorConfig config;
  config.num_users = 20;
  config.sessions_per_user_min = 4;
  config.sessions_per_user_max = 6;
  auto data = GenerateLog(config);
  auto sessions = Sessionize(data.records);
  auto mb = MultiBipartite::Build(data.records, sessions, GetParam());
  // Weighting changes values, never structure: every query keeps the same
  // neighbor count in each bipartite as the raw build.
  auto raw = MultiBipartite::Build(data.records, sessions,
                                   EdgeWeighting::kRaw);
  ASSERT_EQ(mb.num_queries(), raw.num_queries());
  for (BipartiteKind kind : kAllBipartites) {
    for (size_t qid = 0; qid < mb.num_queries(); ++qid) {
      EXPECT_EQ(mb.graph(kind).query_to_object().RowNnz(qid),
                raw.graph(kind).query_to_object().RowNnz(qid));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Weightings, WeightingProperty,
                         testing::Values(EdgeWeighting::kRaw,
                                         EdgeWeighting::kCfIqf));

// ------------------------------------------------- Solver sweep ----

class SolverProperty : public testing::TestWithParam<int> {};

TEST_P(SolverProperty, RandomDominantSystemsSolve) {
  Rng rng(GetParam());
  const size_t n = 30;
  std::vector<Triplet> triplets;
  std::vector<double> row_off(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    for (int e = 0; e < 4; ++e) {
      uint32_t j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j == i) continue;
      double w = -rng.NextDouble();
      triplets.push_back({i, j, w});
      row_off[i] += std::abs(w);
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, row_off[i] + 1.0 + rng.NextDouble()});
  }
  auto a = CsrMatrix::FromTriplets(n, n, triplets);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.NextDouble() * 2.0 - 1.0;
  std::vector<double> x;
  auto result = GaussSeidelSolve(a, b, x, SolverOptions{});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(RelativeResidual(a, x, b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty, testing::Range(1, 9));

// ------------------------------------------- Generator scaling ----

class GeneratorScaleProperty : public testing::TestWithParam<uint32_t> {};

TEST_P(GeneratorScaleProperty, InvariantsHoldAcrossScales) {
  GeneratorConfig config;
  config.num_users = GetParam();
  config.sessions_per_user_min = 3;
  config.sessions_per_user_max = 6;
  auto data = GenerateLog(config);
  EXPECT_EQ(data.records.size(), data.record_facet.size());
  EXPECT_EQ(data.records.size(), data.record_session.size());
  // Every user in range; every facet in range.
  for (size_t i = 0; i < data.records.size(); ++i) {
    EXPECT_LT(data.records[i].user_id, config.num_users);
    EXPECT_LT(data.record_facet[i], data.facets.num_facets());
  }
  // Sessions are contiguous runs.
  std::unordered_set<uint32_t> closed;
  uint32_t current = UINT32_MAX;
  for (uint32_t s : data.record_session) {
    if (s != current) {
      EXPECT_EQ(closed.count(s), 0u) << "session id reappeared";
      if (current != UINT32_MAX) closed.insert(current);
      current = s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, GeneratorScaleProperty,
                         testing::Values(5, 20, 60));

}  // namespace
}  // namespace pqsda
