#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "log/cleaner.h"
#include "log/log_io.h"
#include "log/record.h"
#include "log/sessionizer.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace pqsda {
namespace {

// -------------------------------------------------------- Tokenizer ----

TEST(TokenizerTest, SplitsAndLowercases) {
  auto t = Tokenize("Sun Java  Download");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "sun");
  EXPECT_EQ(t[1], "java");
  EXPECT_EQ(t[2], "download");
}

TEST(TokenizerTest, NonAlnumAreSeparators) {
  auto t = Tokenize("c++ how-to: FAQ?");
  std::vector<std::string> expected = {"c", "how", "to", "faq"};
  EXPECT_EQ(t, expected);
}

TEST(TokenizerTest, EmptyAndPunctOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ---").empty());
}

TEST(TokenizerTest, KeepsDigits) {
  auto t = Tokenize("windows 7 download");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "7");
}

TEST(TokenizerTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD Case"), "mixed case");
}

TEST(TokenizerTest, Stopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_FALSE(IsStopword("java"));
}

// ------------------------------------------------------- Vocabulary ----

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary v;
  TermId a = v.Add("java");
  EXPECT_EQ(v.Lookup("java"), a);
  EXPECT_EQ(v.Lookup("absent"), kInvalidStringId);
  EXPECT_EQ(v.Term(a), "java");
}

TEST(VocabularyTest, QueryFrequencyCounts) {
  Vocabulary v;
  TermId a = v.Add("java");
  EXPECT_EQ(v.QueryFrequency(a), 0u);
  v.CountQueryOccurrence(a);
  v.CountQueryOccurrence(a);
  EXPECT_EQ(v.QueryFrequency(a), 2u);
}

// ----------------------------------------------------------- Record ----

TEST(RecordTest, SortByUserAndTime) {
  std::vector<QueryLogRecord> recs = {
      {2, "b", "", 100},
      {1, "c", "", 300},
      {1, "a", "", 100},
  };
  SortByUserAndTime(recs);
  EXPECT_EQ(recs[0].user_id, 1u);
  EXPECT_EQ(recs[0].query, "a");
  EXPECT_EQ(recs[1].query, "c");
  EXPECT_EQ(recs[2].user_id, 2u);
}

TEST(RecordTest, HasClick) {
  QueryLogRecord r;
  EXPECT_FALSE(r.has_click());
  r.clicked_url = "www.example.com";
  EXPECT_TRUE(r.has_click());
}

// ------------------------------------------------------------ LogIo ----

TEST(LogIoTest, WriteReadRoundTrip) {
  std::vector<QueryLogRecord> recs = {
      {1, "sun java", "java.sun.com", 1355270400},
      {2, "solar cell", "", 1355356800},
  };
  std::string path = testing::TempDir() + "/log_roundtrip.tsv";
  ASSERT_TRUE(WriteLogTsv(path, recs).ok());
  auto read = ReadLogTsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, recs);
  std::remove(path.c_str());
}

TEST(LogIoTest, SanitizesTabsInQuery) {
  std::vector<QueryLogRecord> recs = {{1, "a\tb", "", 5}};
  std::string path = testing::TempDir() + "/log_tabs.tsv";
  ASSERT_TRUE(WriteLogTsv(path, recs).ok());
  auto read = ReadLogTsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0].query, "a b");
  std::remove(path.c_str());
}

TEST(LogIoTest, ParseLineErrors) {
  EXPECT_FALSE(ParseLogLine("only\ttwo").ok());
  EXPECT_FALSE(ParseLogLine("x\tq\tu\t123").ok());   // bad user id
  EXPECT_FALSE(ParseLogLine("1\tq\tu\tnotanum").ok());
  auto ok = ParseLogLine("7\tsun\twww.x.com\t42");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->user_id, 7u);
  EXPECT_EQ(ok->timestamp, 42);
}

TEST(LogIoTest, ReadMissingFileIsIoError) {
  auto r = ReadLogTsv("/nonexistent/dir/file.tsv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------- Cleaner ----

TEST(CleanerTest, DropsEmptyAndOverlong) {
  CleanerOptions opts;
  opts.max_terms = 3;
  std::vector<QueryLogRecord> recs = {
      {1, "", "", 1},
      {1, "a b c d e", "", 2},
      {1, "good query", "", 3},
  };
  CleanerStats stats;
  auto out = CleanLog(recs, opts, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query, "good query");
  EXPECT_EQ(stats.dropped_empty, 1u);
  EXPECT_EQ(stats.dropped_length, 1u);
}

TEST(CleanerTest, CollapsesAdjacentDuplicatesKeepingClick) {
  std::vector<QueryLogRecord> recs = {
      {1, "sun", "", 10},
      {1, "sun", "www.sun.com", 20},
      {1, "moon", "", 30},
  };
  CleanerStats stats;
  auto out = CleanLog(recs, CleanerOptions{}, &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].query, "sun");
  EXPECT_EQ(out[0].clicked_url, "www.sun.com");
  EXPECT_EQ(stats.collapsed_duplicates, 1u);
}

TEST(CleanerTest, DropsRobotUsers) {
  CleanerOptions opts;
  opts.max_records_per_user = 2;
  std::vector<QueryLogRecord> recs = {
      {1, "a", "", 1}, {1, "b", "", 2}, {1, "c", "", 3},
      {2, "d", "", 1},
  };
  auto out = CleanLog(recs, opts, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user_id, 2u);
}

TEST(CleanerTest, MaxCharsLimit) {
  CleanerOptions opts;
  opts.max_chars = 5;
  std::vector<QueryLogRecord> recs = {{1, "abcdef", "", 1}, {1, "abc", "", 2}};
  auto out = CleanLog(recs, opts, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query, "abc");
}

// ------------------------------------------------------ Sessionizer ----

TEST(SessionizerTest, SplitsOnTimeGap) {
  std::vector<QueryLogRecord> recs = {
      {1, "a", "", 0},
      {1, "b", "", 100},
      {1, "c", "", 100 + 3 * 3600},  // far beyond any gap
  };
  auto sessions = Sessionize(recs);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 2u);
  EXPECT_EQ(sessions[1].size(), 1u);
}

TEST(SessionizerTest, SplitsOnUserChange) {
  std::vector<QueryLogRecord> recs = {
      {1, "a", "", 0},
      {2, "a", "", 10},
  };
  auto sessions = Sessionize(recs);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].user_id, 1u);
  EXPECT_EQ(sessions[1].user_id, 2u);
}

TEST(SessionizerTest, LexicalOverlapExtendsSession) {
  SessionizerOptions opts;
  opts.max_gap_seconds = 60;
  opts.extended_gap_seconds = 600;
  std::vector<QueryLogRecord> recs = {
      {1, "sun java", "", 0},
      {1, "java download", "", 300},  // > 60s but shares "java"
      {1, "unrelated stuff", "", 700},
  };
  auto sessions = Sessionize(recs, opts);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 2u);
}

TEST(SessionizerTest, NoLexicalExtensionWhenDisabled) {
  SessionizerOptions opts;
  opts.max_gap_seconds = 60;
  opts.extended_gap_seconds = 600;
  opts.use_lexical_overlap = false;
  std::vector<QueryLogRecord> recs = {
      {1, "sun java", "", 0},
      {1, "java download", "", 300},
  };
  auto sessions = Sessionize(recs, opts);
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionizerTest, RecordToSessionInverse) {
  std::vector<QueryLogRecord> recs = {
      {1, "a", "", 0}, {1, "b", "", 10}, {2, "c", "", 0}};
  auto sessions = Sessionize(recs);
  auto map = RecordToSession(sessions, recs.size());
  EXPECT_EQ(map[0], map[1]);
  EXPECT_NE(map[0], map[2]);
}

TEST(SessionizerTest, EmptyLog) {
  auto sessions = Sessionize({});
  EXPECT_TRUE(sessions.empty());
}

}  // namespace
}  // namespace pqsda
