#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "optim/beta_fit.h"
#include "optim/dirichlet_opt.h"
#include "optim/lbfgs.h"

namespace pqsda {
namespace {

// ------------------------------------------------------------ LBFGS ----

TEST(LbfgsTest, MinimizesQuadratic) {
  // f(x) = (x0-3)^2 + 2(x1+1)^2.
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    g.assign(2, 0.0);
    g[0] = 2.0 * (x[0] - 3.0);
    g[1] = 4.0 * (x[1] + 1.0);
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  std::vector<double> x = {0.0, 0.0};
  auto result = LbfgsMinimize(f, x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 3.0, 1e-4);
  EXPECT_NEAR(x[1], -1.0, 1e-4);
  EXPECT_NEAR(result.value, 0.0, 1e-7);
}

TEST(LbfgsTest, MinimizesRosenbrock) {
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    double a = 1.0 - x[0];
    double b = x[1] - x[0] * x[0];
    g.assign(2, 0.0);
    g[0] = -2.0 * a - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  std::vector<double> x = {-1.2, 1.0};
  LbfgsOptions opts;
  opts.max_iterations = 300;
  auto result = LbfgsMinimize(f, x, opts);
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], 1.0, 1e-3);
  EXPECT_LT(result.value, 1e-6);
}

TEST(LbfgsTest, AlreadyAtMinimum) {
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    g.assign(1, 2.0 * x[0]);
    return x[0] * x[0];
  };
  std::vector<double> x = {0.0};
  auto result = LbfgsMinimize(f, x);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 1u);
}

// ------------------------------------------------------- Dirichlet ----

TEST(DirichletOptTest, LikelihoodIncreasesAfterOptimization) {
  // Synthetic counts from a skewed Dirichlet-multinomial.
  Rng rng(5);
  const size_t dim = 6;
  std::vector<double> truth = {8.0, 4.0, 2.0, 1.0, 0.5, 0.5};
  std::vector<SparseCounts> groups;
  for (int d = 0; d < 60; ++d) {
    auto theta = rng.NextDirichlet(truth);
    std::unordered_map<uint32_t, double> counts;
    for (int n = 0; n < 40; ++n) {
      counts[static_cast<uint32_t>(rng.NextDiscrete(theta))] += 1.0;
    }
    groups.emplace_back(counts.begin(), counts.end());
  }
  std::vector<double> a(dim, 1.0);
  double before = DirichletMultinomialLogLikelihood(groups, dim, a);
  OptimizeDirichlet(groups, dim, a);
  double after = DirichletMultinomialLogLikelihood(groups, dim, a);
  EXPECT_GT(after, before);
  for (double v : a) EXPECT_GT(v, 0.0);
}

TEST(DirichletOptTest, RecoversSkewDirection) {
  Rng rng(6);
  const size_t dim = 4;
  std::vector<double> truth = {10.0, 1.0, 1.0, 1.0};
  std::vector<SparseCounts> groups;
  for (int d = 0; d < 80; ++d) {
    auto theta = rng.NextDirichlet(truth);
    std::unordered_map<uint32_t, double> counts;
    for (int n = 0; n < 30; ++n) {
      counts[static_cast<uint32_t>(rng.NextDiscrete(theta))] += 1.0;
    }
    groups.emplace_back(counts.begin(), counts.end());
  }
  std::vector<double> a(dim, 1.0);
  OptimizeDirichlet(groups, dim, a);
  // Component 0 should get the largest pseudo-count.
  for (size_t v = 1; v < dim; ++v) EXPECT_GT(a[0], a[v]);
}

TEST(DirichletOptTest, EmptyGroupsLeaveParamsFinite) {
  std::vector<SparseCounts> groups(3);  // all empty
  std::vector<double> a(4, 0.5);
  OptimizeDirichlet(groups, 4, a);
  for (double v : a) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }
}

// ---------------------------------------------------------- BetaFit ----

TEST(BetaFitTest, RecoverKnownParameters) {
  Rng rng(7);
  const double a = 2.0, b = 5.0;
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.NextBeta(a, b));
  auto [fa, fb] = FitBetaMoments(samples);
  EXPECT_NEAR(fa, a, 0.15);
  EXPECT_NEAR(fb, b, 0.3);
}

TEST(BetaFitTest, MomentsMatchEquations) {
  // Direct check of Eqs. 28-29 on a hand-made sample.
  std::vector<double> samples = {0.2, 0.4, 0.6};
  double m = 0.4;
  double s2 = (0.04 + 0.0 + 0.04) / 3.0;
  double common = m * (1 - m) / s2 - 1.0;
  auto [fa, fb] = FitBetaMoments(samples);
  EXPECT_NEAR(fa, m * common, 1e-9);
  EXPECT_NEAR(fb, (1 - m) * common, 1e-9);
}

TEST(BetaFitTest, DegenerateInputsSafe) {
  auto [a1, b1] = FitBetaMoments({});
  EXPECT_EQ(a1, 1.0);
  EXPECT_EQ(b1, 1.0);
  auto [a2, b2] = FitBetaMoments({0.5});  // zero variance
  EXPECT_TRUE(std::isfinite(a2) && a2 > 0.0);
  EXPECT_TRUE(std::isfinite(b2) && b2 > 0.0);
  auto [a3, b3] = FitBetaMoments({0.0, 0.0, 0.0});  // mean at bound
  EXPECT_TRUE(std::isfinite(a3) && a3 > 0.0);
  EXPECT_TRUE(std::isfinite(b3) && b3 > 0.0);
}

TEST(BetaFitTest, ClampedToSafeRange) {
  // Tiny variance would produce giant parameters; must be clamped.
  auto [a, b] = FitBetaMoments({0.5, 0.5000001, 0.4999999});
  EXPECT_LE(a, 1000.0);
  EXPECT_LE(b, 1000.0);
}

}  // namespace
}  // namespace pqsda
