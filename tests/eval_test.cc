#include <algorithm>
#include <memory>
#include <unordered_map>

#include <gtest/gtest.h>

#include "eval/diversity.h"
#include "eval/harness.h"
#include "eval/hpr.h"
#include "eval/ppr.h"
#include "eval/relevance.h"
#include "eval/report.h"
#include "eval/synthetic_adapters.h"

namespace pqsda {
namespace {

// A page-similarity stub keyed by domain prefix: same first letter = 1.
class PrefixSimilarity : public PageSimilarity {
 public:
  double Similarity(const std::string& a,
                    const std::string& b) const override {
    if (a.empty() || b.empty()) return 0.0;
    return a[0] == b[0] ? 1.0 : 0.0;
  }
};

std::vector<QueryLogRecord> EvalLog() {
  return {
      {1, "q1", "aaa.com", 10},
      {1, "q1", "abc.com", 20},
      {1, "q2", "axy.com", 30},
      {2, "q3", "zzz.com", 10},
      {2, "q4", "", 20},
  };
}

// -------------------------------------------------------- Diversity ----

TEST(DiversityTest, ClickedPagesDedups) {
  std::vector<QueryLogRecord> recs = {
      {1, "q", "a.com", 1}, {2, "q", "a.com", 2}, {1, "q", "b.com", 3}};
  auto pages = ClickedPages::Build(recs);
  ASSERT_NE(pages.Pages("q"), nullptr);
  EXPECT_EQ(pages.Pages("q")->size(), 2u);
  EXPECT_EQ(pages.Pages("missing"), nullptr);
}

TEST(DiversityTest, SameClusterPairNotDiverse) {
  auto pages = ClickedPages::Build(EvalLog());
  PrefixSimilarity sim;
  // q1 and q2 both click a*-domains -> similarity 1 -> diversity 0.
  EXPECT_NEAR(QueryPairDiversity("q1", "q2", pages, sim), 0.0, 1e-12);
  // q1 vs q3 -> fully diverse.
  EXPECT_NEAR(QueryPairDiversity("q1", "q3", pages, sim), 1.0, 1e-12);
}

TEST(DiversityTest, NoClickCountsAsDiverse) {
  auto pages = ClickedPages::Build(EvalLog());
  PrefixSimilarity sim;
  EXPECT_EQ(QueryPairDiversity("q1", "q4", pages, sim), 1.0);
}

TEST(DiversityTest, ListDiversityAverages) {
  auto pages = ClickedPages::Build(EvalLog());
  PrefixSimilarity sim;
  std::vector<Suggestion> mixed = {{"q1", 0}, {"q2", 0}, {"q3", 0}};
  // Pairs: (q1,q2)=0, (q1,q3)=1, (q2,q3)=1 -> mean = 2/3.
  EXPECT_NEAR(ListDiversity(mixed, 3, pages, sim), 2.0 / 3.0, 1e-12);
  // Prefix of 2 same-cluster queries -> 0.
  EXPECT_NEAR(ListDiversity(mixed, 2, pages, sim), 0.0, 1e-12);
  // Single element -> 0 by definition.
  EXPECT_EQ(ListDiversity(mixed, 1, pages, sim), 0.0);
}

// -------------------------------------------------------- Relevance ----

class MapCategories : public QueryCategoryProvider {
 public:
  void Add(const std::string& q, CategoryId c) { map_[q].push_back(c); }
  std::vector<CategoryId> Categories(const std::string& q) const override {
    auto it = map_.find(q);
    if (it == map_.end()) return {};
    return it->second;
  }

 private:
  std::unordered_map<std::string, std::vector<CategoryId>> map_;
};

TEST(RelevanceTest, PairAndListRelevance) {
  Taxonomy tax;
  CategoryId a = tax.AddChild(0, "a");
  CategoryId a1 = tax.AddChild(a, "a1");
  CategoryId a2 = tax.AddChild(a, "a2");
  CategoryId b = tax.AddChild(0, "b");
  MapCategories cats;
  cats.Add("in", a1);
  cats.Add("same", a1);
  cats.Add("sibling", a2);
  cats.Add("far", b);
  EXPECT_NEAR(QueryPairRelevance("in", "same", tax, cats), 1.0, 1e-12);
  EXPECT_NEAR(QueryPairRelevance("in", "sibling", tax, cats), 2.0 / 3.0,
              1e-12);
  EXPECT_NEAR(QueryPairRelevance("in", "unknown", tax, cats), 0.0, 1e-12);
  // Multi-listing queries use the best-matching category pair.
  cats.Add("ambiguous", b);
  cats.Add("ambiguous", a1);
  EXPECT_NEAR(QueryPairRelevance("in", "ambiguous", tax, cats), 1.0, 1e-12);

  std::vector<Suggestion> list = {{"same", 0}, {"sibling", 0}, {"far", 0}};
  double expected =
      (1.0 + 2.0 / 3.0 + tax.PathRelevance(a1, b)) / 3.0;
  EXPECT_NEAR(ListRelevance("in", list, 3, tax, cats), expected, 1e-12);
  EXPECT_NEAR(ListRelevance("in", list, 1, tax, cats), 1.0, 1e-12);
  EXPECT_EQ(ListRelevance("in", {}, 5, tax, cats), 0.0);
}

// -------------------------------------------------------------- PPR ----

TEST(PprTest, TextCosine) {
  EXPECT_NEAR(TextCosine("sun java", "sun java"), 1.0, 1e-12);
  EXPECT_NEAR(TextCosine("sun", "moon"), 0.0, 1e-12);
  EXPECT_EQ(TextCosine("", "x"), 0.0);
}

TEST(PprTest, SuggestionPprAgainstTitles) {
  std::vector<std::string> titles = {"java runtime download",
                                     "java virtual machine"};
  double match = SuggestionPpr("java download", titles);
  double miss = SuggestionPpr("solar energy", titles);
  EXPECT_GT(match, 0.0);
  EXPECT_EQ(miss, 0.0);
  EXPECT_EQ(SuggestionPpr("java", {}), 0.0);
}

TEST(PprTest, ListPprAverages) {
  std::vector<std::string> titles = {"java runtime"};
  std::vector<Suggestion> list = {{"java", 0}, {"solar", 0}};
  double both = ListPpr(list, 2, titles);
  double first = ListPpr(list, 1, titles);
  EXPECT_GT(first, both);  // the non-matching second entry dilutes
  EXPECT_EQ(ListPpr({}, 3, titles), 0.0);
}

// -------------------------------------------------------------- HPR ----

TEST(HprTest, SnapToScale) {
  EXPECT_DOUBLE_EQ(SnapToSixPointScale(0.0), 0.0);
  EXPECT_DOUBLE_EQ(SnapToSixPointScale(0.09), 0.0);
  EXPECT_DOUBLE_EQ(SnapToSixPointScale(0.11), 0.2);
  EXPECT_DOUBLE_EQ(SnapToSixPointScale(0.95), 1.0);
  EXPECT_DOUBLE_EQ(SnapToSixPointScale(1.7), 1.0);
  EXPECT_DOUBLE_EQ(SnapToSixPointScale(-0.4), 0.0);
}

TEST(HprTest, OracleRaterScoresExactFacetFull) {
  Taxonomy tax = Taxonomy::BuildUniform(3, 3);
  Rng rng(1);
  FacetModelConfig fconfig;
  fconfig.num_facets = 9;
  fconfig.num_concepts = 2;
  FacetModel facets(tax, fconfig, rng);
  SimulatedRater rater(tax, facets, /*noise=*/0.0, 1);
  const Facet& f = facets.facets()[0];
  // A facet-specific query (pool entry beyond a possible ambiguous head).
  double r = rater.Rate(f.id, f.query_pool[1]);
  EXPECT_DOUBLE_EQ(r, 1.0);
  // A non-canonical query is irrelevant.
  EXPECT_LE(rater.Rate(f.id, "garbage query"), 0.2);
}

TEST(HprTest, StandingInterestEarnsCredit) {
  Taxonomy tax = Taxonomy::BuildUniform(3, 3);
  Rng rng(3);
  FacetModelConfig fconfig;
  fconfig.num_facets = 9;
  fconfig.num_concepts = 0;
  FacetModel facets(tax, fconfig, rng);
  SimulatedRater rater(tax, facets, 0.0, 5);
  const Facet& f0 = facets.facets()[0];
  const Facet& far = facets.facets()[8];
  // Without a profile, a far-away facet's query rates poorly.
  double plain = rater.Rate(f0.id, far.query_pool[1]);
  // With a profile that loves that facet, it rates much higher.
  std::vector<double> profile(9, 0.01);
  profile[far.id] = 0.9;
  double with_profile = rater.Rate(f0.id, far.query_pool[1], &profile);
  EXPECT_GT(with_profile, plain);
  EXPECT_GE(with_profile, 0.6);
}

TEST(HprTest, RateListAverages) {
  Taxonomy tax = Taxonomy::BuildUniform(3, 3);
  Rng rng(2);
  FacetModelConfig fconfig;
  fconfig.num_facets = 9;
  fconfig.num_concepts = 0;
  FacetModel facets(tax, fconfig, rng);
  SimulatedRater rater(tax, facets, 0.0, 2);
  const Facet& f0 = facets.facets()[0];
  const Facet& f1 = facets.facets()[1];
  std::vector<Suggestion> list = {{f0.query_pool[1], 0},
                                  {f1.query_pool[1], 0}};
  double top1 = rater.RateList(f0.id, list, 1);
  double top2 = rater.RateList(f0.id, list, 2);
  EXPECT_DOUBLE_EQ(top1, 1.0);
  EXPECT_LT(top2, 1.0);
}

// ----------------------------------------------------------- Report ----

TEST(ReportTest, TableRendersAllSeries) {
  FigureTable t;
  t.title = "Fig X";
  t.x_label = "k";
  t.x_values = {"1", "5"};
  t.AddSeries("PQS-DA", {0.5, 0.75});
  t.AddSeries("FRW", {0.3});
  std::string s = t.ToString();
  EXPECT_NE(s.find("Fig X"), std::string::npos);
  EXPECT_NE(s.find("PQS-DA"), std::string::npos);
  EXPECT_NE(s.find("0.7500"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);  // missing cell placeholder
}

// ----------------------------------------- Adapters and harness ----

class AdapterTest : public testing::Test {
 protected:
  static const SyntheticDataset& data() {
    static SyntheticDataset* d = [] {
      GeneratorConfig config;
      config.num_users = 30;
      config.sessions_per_user_min = 5;
      config.sessions_per_user_max = 9;
      return new SyntheticDataset(GenerateLog(config));
    }();
    return *d;
  }
};

TEST_F(AdapterTest, PageSimilaritySelfIsOne) {
  SyntheticPageSimilarity sim(data().facets);
  const Facet& f = data().facets.facets()[0];
  EXPECT_NEAR(sim.Similarity(f.urls[0], f.urls[0]), 1.0, 1e-9);
  EXPECT_EQ(sim.Similarity(f.urls[0], "unknown.com"), 0.0);
}

TEST_F(AdapterTest, SameFacetPagesMoreSimilarThanCrossBranchOnAverage) {
  SyntheticPageSimilarity sim(data().facets);
  const Facet& f0 = data().facets.facets()[0];
  // Pick a facet under a different top-level taxonomy branch so the pages
  // share no branch vocabulary.
  auto top_branch = [&](CategoryId c) {
    auto path = data().taxonomy.PathFromRoot(c);
    return path.size() > 1 ? path[1] : 0u;
  };
  const Facet* other = nullptr;
  for (const Facet& f : data().facets.facets()) {
    if (top_branch(f.category) != top_branch(f0.category)) {
      other = &f;
      break;
    }
  }
  ASSERT_NE(other, nullptr);
  double same = 0.0, cross = 0.0;
  int n = 0;
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      if (i != j) same += sim.Similarity(f0.urls[i], f0.urls[j]);
      cross += sim.Similarity(f0.urls[i], other->urls[j]);
      ++n;
    }
  }
  EXPECT_GT(same / (n - 4), cross / n);
}

TEST_F(AdapterTest, ContentProviderReturnsVectors) {
  SyntheticPageContentProvider provider(data().facets);
  const Facet& f = data().facets.facets()[0];
  ASSERT_NE(provider.TermVector(f.urls[0]), nullptr);
  EXPECT_EQ(provider.TermVector("nope.com"), nullptr);
}

TEST_F(AdapterTest, CategoriesResolve) {
  SyntheticQueryCategories cats(data());
  EXPECT_FALSE(cats.Categories(data().records[0].query).empty());
  EXPECT_TRUE(cats.Categories("made up query").empty());
}

TEST_F(AdapterTest, SnippetTruncationLimitsVector) {
  SyntheticPageContentProvider full(data().facets, /*snippet_terms=*/0);
  SyntheticPageContentProvider lossy(data().facets, /*snippet_terms=*/3);
  const Facet& f = data().facets.facets()[0];
  const auto* fv = full.TermVector(f.urls[0]);
  const auto* lv = lossy.TermVector(f.urls[0]);
  ASSERT_NE(fv, nullptr);
  ASSERT_NE(lv, nullptr);
  EXPECT_LE(lv->size(), 3u);
  EXPECT_GE(fv->size(), lv->size());
  // Truncated vectors stay id-sorted.
  for (size_t i = 1; i < lv->size(); ++i) {
    EXPECT_LT((*lv)[i - 1].first, (*lv)[i].first);
  }
}

TEST_F(AdapterTest, AmbiguousQueryHasMultipleCategories) {
  SyntheticQueryCategories cats(data());
  const std::string& token = data().facets.concept_tokens()[0];
  EXPECT_GE(cats.Categories(token).size(), 2u);
}

TEST_F(AdapterTest, SampleTestQueriesHaveContext) {
  auto tests = SampleTestQueries(data(), 50, 7);
  ASSERT_EQ(tests.size(), 50u);
  bool any_context = false;
  for (const auto& t : tests) {
    EXPECT_FALSE(t.request.query.empty());
    if (!t.request.context.empty()) any_context = true;
    // Context precedes the input in time.
    for (const auto& [q, ts] : t.request.context) {
      (void)q;
      EXPECT_LE(ts, t.request.timestamp);
    }
  }
  EXPECT_TRUE(any_context);
}

TEST_F(AdapterTest, SplitHoldsOutRecentSessions) {
  auto split = SplitByRecentSessions(data(), 2);
  EXPECT_FALSE(split.train.empty());
  EXPECT_FALSE(split.test_sessions.empty());
  // Each user contributes at most 2 test sessions.
  std::unordered_map<UserId, int> per_user;
  for (const auto& ts : split.test_sessions) ++per_user[ts.user];
  for (const auto& [u, n] : per_user) {
    (void)u;
    EXPECT_LE(n, 2);
  }
  // Train + test record counts match the original.
  size_t test_records = 0;
  for (const auto& ts : split.test_sessions) test_records += ts.records.size();
  EXPECT_EQ(split.train.size() + test_records, data().records.size());
}

TEST_F(AdapterTest, TestSessionsAreChronologicallyLast) {
  auto split = SplitByRecentSessions(data(), 2);
  // The held-out sessions are each user's most recent ones: no training
  // record of a user may be later than that user's last test record, modulo
  // the generator's maximum within-session span (sessions can start close
  // together and overlap slightly at their tails).
  std::unordered_map<UserId, int64_t> max_train;
  for (const auto& r : split.train) {
    auto& m = max_train[r.user_id];
    m = std::max(m, r.timestamp);
  }
  std::unordered_map<UserId, int64_t> last_test;
  for (const auto& ts : split.test_sessions) {
    auto& m = last_test[ts.user];
    m = std::max(m, ts.records.back().timestamp);
  }
  const int64_t slack = 5 * 240;  // max queries/session * max gap
  for (const auto& [user, t_test] : last_test) {
    auto it = max_train.find(user);
    if (it == max_train.end()) continue;
    EXPECT_LE(it->second, t_test + slack) << "user " << user;
  }
}

TEST_F(AdapterTest, RequestFromTestSession) {
  auto split = SplitByRecentSessions(data(), 1);
  ASSERT_FALSE(split.test_sessions.empty());
  const auto& ts = split.test_sessions[0];
  auto req = RequestFromTestSession(ts);
  EXPECT_EQ(req.query, ts.records.front().query);
  EXPECT_EQ(req.user, ts.user);
  EXPECT_TRUE(req.context.empty());
}

}  // namespace
}  // namespace pqsda
