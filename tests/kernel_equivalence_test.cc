// Equivalence suite for the hot-path kernels: every vectorized
// implementation is held against its scalar reference — bitwise where the
// canonical accumulation order guarantees it (SIMD levels of one kernel),
// tolerance-gated where the algorithm itself changed the floating-point
// grouping (operator assembly vs triplet assembly, merged chain vs
// interleaved reference). Runs under the plain, TSAN and ASan verify
// stages; run_benches.sh refuses to publish kernel numbers unless this
// suite is green.

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "graph/csr_matrix.h"
#include "graph/multi_bipartite.h"
#include "solver/eq15_operator.h"
#include "solver/linear_solvers.h"
#include "solver/regularization.h"
#include "suggest/hitting_time_suggester.h"

namespace pqsda {
namespace {

// Deterministic pseudo-random doubles (no std::random, so the fixture is
// identical on every platform and run).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  double NextDouble() {  // in (-1, 1), never exactly 0
    double v = static_cast<double>(Next() % 2000001) / 1000000.0 - 1.0;
    return v == 0.0 ? 0.5 : v;
  }

 private:
  uint64_t state_;
};

// Restores the dispatch level on scope exit so a failing test cannot leak a
// forced level into the rest of the binary.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : saved_(simd::ActiveLevel()) {
    simd::SetLevel(level);
  }
  ~ScopedLevel() { simd::SetLevel(saved_); }

 private:
  simd::Level saved_;
};

// ------------------------------------------------ SparseDot / AxpyScatter --

// Every level the host actually supports (SetLevel clamps, so asking for
// AVX2 on a non-AVX2 host sticks at scalar — skip those).
std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  for (simd::Level l : {simd::Level::kAvx2, simd::Level::kNeon}) {
    simd::SetLevel(l);
    if (simd::ActiveLevel() == l) levels.push_back(l);
  }
  simd::SetLevel(simd::Level::kScalar);
  return levels;
}

TEST(SparseDotTest, AllLevelsBitwiseMatchScalarReference) {
  Lcg rng(7);
  std::vector<double> x(256);
  for (double& v : x) v = rng.NextDouble();
  auto levels = SupportedLevels();
  // Row lengths 0..64 cover every vector-body/tail split (n % 4 in
  // {0,1,2,3}) plus the empty row.
  for (size_t n = 0; n <= 64; ++n) {
    std::vector<double> values(n);
    std::vector<uint32_t> cols(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = rng.NextDouble();
      cols[i] = static_cast<uint32_t>(rng.Next() % x.size());
    }
    const double reference =
        simd::SparseDotScalar(values.data(), cols.data(), n, x.data());
    for (simd::Level level : levels) {
      ScopedLevel scoped(level);
      const double got =
          simd::SparseDot(values.data(), cols.data(), n, x.data());
      EXPECT_EQ(reference, got)
          << "n=" << n << " level=" << simd::LevelName(level);
    }
  }
}

TEST(SparseDotTest, SequentialOrderAgreesWithinTolerance) {
  Lcg rng(11);
  std::vector<double> x(128);
  for (double& v : x) v = rng.NextDouble();
  for (size_t n : {1u, 3u, 7u, 32u, 63u}) {
    std::vector<double> values(n);
    std::vector<uint32_t> cols(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = rng.NextDouble();
      cols[i] = static_cast<uint32_t>(rng.Next() % x.size());
    }
    const double canonical =
        simd::SparseDotScalar(values.data(), cols.data(), n, x.data());
    const double sequential =
        simd::SparseDotSequential(values.data(), cols.data(), n, x.data());
    EXPECT_NEAR(canonical, sequential, 1e-12) << "n=" << n;
  }
}

TEST(AxpyScatterTest, AllLevelsBitwiseMatchScalarReference) {
  Lcg rng(13);
  auto levels = SupportedLevels();
  for (size_t n = 0; n <= 64; ++n) {
    // Unique columns per row, as CSR guarantees.
    std::vector<uint32_t> cols(n);
    for (size_t i = 0; i < n; ++i) cols[i] = static_cast<uint32_t>(i * 3);
    std::vector<double> values(n);
    for (double& v : values) v = rng.NextDouble();
    const double xi = rng.NextDouble();
    std::vector<double> reference(200, 0.25);
    simd::AxpyScatterScalar(values.data(), cols.data(), n, xi,
                            reference.data());
    for (simd::Level level : levels) {
      ScopedLevel scoped(level);
      std::vector<double> y(200, 0.25);
      simd::AxpyScatter(values.data(), cols.data(), n, xi, y.data());
      for (size_t i = 0; i < y.size(); ++i) {
        ASSERT_EQ(reference[i], y[i])
            << "n=" << n << " i=" << i << " level=" << simd::LevelName(level);
      }
    }
  }
}

// -------------------------------------------------- MatVec through levels --

CsrMatrix RaggedMatrix(uint32_t rows, uint32_t cols, Lcg& rng) {
  std::vector<Triplet> triplets;
  for (uint32_t i = 0; i < rows; ++i) {
    // Ragged: row i has i % 9 entries, so empty rows, short tails and
    // full vector bodies all appear in one matrix.
    const uint32_t nnz = i % 9;
    for (uint32_t k = 0; k < nnz; ++k) {
      triplets.push_back(Triplet{i, static_cast<uint32_t>(rng.Next() % cols),
                                 rng.NextDouble()});
    }
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST(MatVecTest, LevelsBitwiseAgree) {
  Lcg rng(17);
  CsrMatrix a = RaggedMatrix(60, 40, rng);
  std::vector<double> x(40);
  for (double& v : x) v = rng.NextDouble();
  std::vector<double> reference, y;
  {
    ScopedLevel scoped(simd::Level::kScalar);
    a.MatVec(x, reference);
  }
  for (simd::Level level : SupportedLevels()) {
    ScopedLevel scoped(level);
    a.MatVec(x, y);
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], y[i])
          << "row " << i << " level=" << simd::LevelName(level);
    }
  }
}

TEST(MatVecTest, TransposeLevelsBitwiseAgree) {
  Lcg rng(19);
  CsrMatrix a = RaggedMatrix(60, 40, rng);
  std::vector<double> x(60);
  for (double& v : x) v = rng.NextDouble();
  std::vector<double> reference, y;
  {
    ScopedLevel scoped(simd::Level::kScalar);
    a.TransposeMatVec(x, reference);
  }
  for (simd::Level level : SupportedLevels()) {
    ScopedLevel scoped(level);
    a.TransposeMatVec(x, y);
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], y[i])
          << "col " << i << " level=" << simd::LevelName(level);
    }
  }
}

// ------------------------------------------------------- Eq. 15 operator --

std::vector<QueryLogRecord> FixtureLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 120},
      {1, "jvm download", "", 200},
      {2, "sun", "www.suncellular.com", 100},
      {2, "solar cell", "en.wikipedia.org", 160},
      {3, "sun oracle", "www.oracle.com", 100},
      {3, "java", "www.java.com", 172},
      {4, "solar panel", "en.wikipedia.org", 90},
      {4, "sun", "www.java.com", 210},
  };
}

CompactRepresentation FixtureRep() {
  auto records = FixtureLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  auto rep = builder.Build(mb.QueryId("sun"), {}, CompactBuilderOptions{12, 4});
  EXPECT_TRUE(rep.ok());
  return std::move(rep).value();
}

constexpr std::array<double, 3> kAlpha = {0.6, 0.45, 0.25};

TEST(Eq15OperatorTest, MatchesTripletAssembly) {
  auto rep = FixtureRep();
  CsrMatrix reference = AssembleRegularizationSystem(rep, kAlpha);
  Eq15Operator op = BuildEq15Operator(rep, kAlpha);
  ASSERT_EQ(op.n, rep.size());
  // Compare as dense MatVec against unit vectors: exercises diag + off
  // exactly the way the solvers consume them. The assemblies group the
  // duplicate-entry sums differently, hence 1e-12 instead of bitwise.
  const size_t n = rep.size();
  std::vector<double> e(n, 0.0), col_ref, col_op;
  for (size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    reference.MatVec(e, col_ref);
    Eq15MatVec(op, e, col_op);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(col_ref[i], col_op[i], 1e-12) << "entry (" << i << "," << j
                                                << ")";
    }
    e[j] = 0.0;
  }
}

TEST(Eq15OperatorTest, OffDiagonalHasNoDiagonalEntries) {
  auto rep = FixtureRep();
  Eq15Operator op = BuildEq15Operator(rep, kAlpha);
  for (uint32_t i = 0; i < op.off.rows; ++i) {
    auto cols = op.off.RowIndices(i);
    for (uint32_t c : cols) EXPECT_NE(c, i);
    for (size_t k = 1; k < cols.size(); ++k) {
      EXPECT_LT(cols[k - 1], cols[k]);  // strictly ascending
    }
  }
}

TEST(Eq15OperatorTest, SolversMatchCsrSolvers) {
  auto rep = FixtureRep();
  CsrMatrix a = AssembleRegularizationSystem(rep, kAlpha);
  Eq15Operator op = BuildEq15Operator(rep, kAlpha);
  std::vector<double> b(rep.size());
  Lcg rng(23);
  for (double& v : b) v = std::abs(rng.NextDouble());

  SolverOptions options;
  options.tolerance = 1e-10;

  std::vector<double> x_csr, x_op;
  auto r_csr = JacobiSolve(a, b, x_csr, options);
  auto r_op = JacobiSolve(op, b, x_op, options);
  EXPECT_EQ(r_csr.converged, r_op.converged);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x_csr[i], x_op[i], 1e-9);

  auto g_csr = GaussSeidelSolve(a, b, x_csr, options);
  auto g_op = GaussSeidelSolve(op, b, x_op, options);
  EXPECT_EQ(g_csr.converged, g_op.converged);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x_csr[i], x_op[i], 1e-9);

  auto c_csr = ConjugateGradientSolve(a, b, x_csr, options);
  auto c_op = ConjugateGradientSolve(op, b, x_op, options);
  EXPECT_EQ(c_csr.converged, c_op.converged);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x_csr[i], x_op[i], 1e-9);
}

TEST(Eq15OperatorTest, ParallelJacobiBitwiseStableAcrossThreadCounts) {
  auto rep = FixtureRep();
  Eq15Operator op = BuildEq15Operator(rep, kAlpha);
  std::vector<double> b(rep.size());
  Lcg rng(29);
  for (double& v : b) v = std::abs(rng.NextDouble());
  SolverOptions options;
  options.tolerance = 1e-10;

  std::vector<double> x1;
  JacobiSolveParallel(op, b, x1, options, 1, nullptr);
  for (size_t threads : {2u, 3u, 4u}) {
    ThreadPool pool(threads);
    std::vector<double> xt;
    JacobiSolveParallel(op, b, xt, options, threads, &pool);
    ASSERT_EQ(x1.size(), xt.size());
    for (size_t i = 0; i < x1.size(); ++i) {
      ASSERT_EQ(x1[i], xt[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(Eq15OperatorTest, SolverLevelsBitwiseAgree) {
  auto rep = FixtureRep();
  Eq15Operator op = BuildEq15Operator(rep, kAlpha);
  std::vector<double> b(rep.size());
  Lcg rng(31);
  for (double& v : b) v = std::abs(rng.NextDouble());
  SolverOptions options;
  options.tolerance = 1e-10;

  std::vector<double> reference, x;
  {
    ScopedLevel scoped(simd::Level::kScalar);
    JacobiSolve(op, b, reference, options);
  }
  for (simd::Level level : SupportedLevels()) {
    ScopedLevel scoped(level);
    x.clear();  // cold start — a warm start would hide level differences
    JacobiSolve(op, b, x, options);
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], x[i])
          << "i=" << i << " level=" << simd::LevelName(level);
    }
  }
}

// --------------------------------------------------------- Merged chain --

TEST(MergedChainTest, HittingTimesMatchReference) {
  auto rep = FixtureRep();
  std::vector<const CsrMatrix*> chains = {&rep.row_norm[0], &rep.row_norm[1],
                                          &rep.row_norm[2]};
  std::vector<double> weights = {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
  std::vector<uint32_t> seeds = {0};

  HittingTimeWorkspace ref_ws, merged_ws;
  ChainHittingTimeInto(chains, weights, seeds, 24, nullptr, ref_ws);
  MergedChain merged = BuildMergedChain(chains, weights);
  MergedChainHittingTimeInto(merged, seeds, 24, nullptr, merged_ws);

  ASSERT_EQ(ref_ws.h.size(), merged_ws.h.size());
  for (size_t i = 0; i < ref_ws.h.size(); ++i) {
    // The merge regroups the weighted per-chain terms, so agreement is
    // tolerance-gated (relative 1e-9), not bitwise.
    const double scale = std::max(1.0, std::abs(ref_ws.h[i]));
    EXPECT_NEAR(ref_ws.h[i], merged_ws.h[i], 1e-9 * scale) << "i=" << i;
  }
}

TEST(MergedChainTest, MassIsRowSumOfMixture) {
  auto rep = FixtureRep();
  std::vector<const CsrMatrix*> chains = {&rep.row_norm[0], &rep.row_norm[1],
                                          &rep.row_norm[2]};
  std::vector<double> weights = {0.5, 0.3, 0.2};
  MergedChain merged = BuildMergedChain(chains, weights);
  ASSERT_EQ(merged.mass.size(), merged.m.rows);
  for (uint32_t i = 0; i < merged.m.rows; ++i) {
    auto vals = merged.m.RowValues(i);
    double sum = 0.0;
    for (double v : vals) sum += v;
    EXPECT_NEAR(sum, merged.mass[i], 1e-15) << "row " << i;
  }
}

TEST(MergedChainTest, StableAcrossThreadCounts) {
  auto rep = FixtureRep();
  std::vector<const CsrMatrix*> chains = {&rep.row_norm[0], &rep.row_norm[1],
                                          &rep.row_norm[2]};
  std::vector<double> weights = {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
  std::vector<uint32_t> seeds = {0, 2};
  MergedChain merged = BuildMergedChain(chains, weights);

  HittingTimeWorkspace serial_ws;
  MergedChainHittingTimeInto(merged, seeds, 16, nullptr, serial_ws);
  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    HittingTimeWorkspace ws;
    MergedChainHittingTimeInto(merged, seeds, 16, &pool, ws);
    ASSERT_EQ(serial_ws.h.size(), ws.h.size());
    for (size_t i = 0; i < ws.h.size(); ++i) {
      ASSERT_EQ(serial_ws.h[i], ws.h[i]) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace pqsda
