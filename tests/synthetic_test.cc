#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "synthetic/facet_model.h"
#include "synthetic/generator.h"
#include "synthetic/taxonomy.h"
#include "synthetic/user_model.h"

namespace pqsda {
namespace {

// --------------------------------------------------------- Taxonomy ----

TEST(TaxonomyTest, UniformBuildShape) {
  Taxonomy t = Taxonomy::BuildUniform(3, 2);
  // 1 root + 2 + 4 + 8 nodes.
  EXPECT_EQ(t.size(), 15u);
  EXPECT_EQ(t.Leaves().size(), 8u);
}

TEST(TaxonomyTest, PathFromRootStartsAtRoot) {
  Taxonomy t = Taxonomy::BuildUniform(2, 3);
  for (CategoryId leaf : t.Leaves()) {
    auto path = t.PathFromRoot(leaf);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), leaf);
    EXPECT_EQ(path.size(), 3u);  // root + 2 levels
  }
}

TEST(TaxonomyTest, PathRelevanceIdentity) {
  Taxonomy t = Taxonomy::BuildUniform(3, 2);
  CategoryId leaf = t.Leaves()[0];
  EXPECT_NEAR(t.PathRelevance(leaf, leaf), 1.0, 1e-12);
}

TEST(TaxonomyTest, PathRelevanceSiblingsShareParent) {
  Taxonomy t;
  CategoryId a = t.AddChild(0, "a");
  CategoryId a1 = t.AddChild(a, "a1");
  CategoryId a2 = t.AddChild(a, "a2");
  CategoryId b = t.AddChild(0, "b");
  CategoryId b1 = t.AddChild(b, "b1");
  // a1, a2 share root+a (2 of 3 nodes) -> 2/3.
  EXPECT_NEAR(t.PathRelevance(a1, a2), 2.0 / 3.0, 1e-12);
  // a1, b1 share only root -> 1/3.
  EXPECT_NEAR(t.PathRelevance(a1, b1), 1.0 / 3.0, 1e-12);
}

TEST(TaxonomyTest, PathStringContainsLabels) {
  Taxonomy t;
  CategoryId a = t.AddChild(0, "science");
  CategoryId a1 = t.AddChild(a, "astro");
  EXPECT_EQ(t.PathString(a1), "Top/science/astro");
}

// ------------------------------------------------------- FacetModel ----

class FacetModelTest : public testing::Test {
 protected:
  FacetModelTest()
      : taxonomy_(Taxonomy::BuildUniform(3, 4)),
        rng_(42),
        facets_(taxonomy_, FacetModelConfig{}, rng_) {}

  Taxonomy taxonomy_;
  Rng rng_;
  FacetModel facets_;
};

TEST_F(FacetModelTest, BuildsRequestedFacets) {
  EXPECT_EQ(facets_.num_facets(), FacetModelConfig{}.num_facets);
}

TEST_F(FacetModelTest, FacetsHaveQueriesUrlsTerms) {
  const FacetModelConfig config;
  for (const Facet& f : facets_.facets()) {
    EXPECT_EQ(f.terms.size(), config.terms_per_facet);
    EXPECT_EQ(f.urls.size(), config.urls_per_facet);
    EXPECT_GE(f.query_pool.size(), config.queries_per_facet);
    EXPECT_EQ(f.query_pool.size(), f.query_popularity.size());
  }
}

TEST_F(FacetModelTest, ConceptTokenSharedAcrossFacets) {
  const FacetModelConfig config;
  ASSERT_EQ(facets_.concept_tokens().size(), config.num_concepts);
  for (size_t c = 0; c < config.num_concepts; ++c) {
    const auto& members = facets_.concept_facets(c);
    EXPECT_EQ(members.size(), config.facets_per_concept);
    const std::string& token = facets_.concept_tokens()[c];
    // The bare token is a query of every member facet.
    auto owners = facets_.QueryFacets(token);
    std::set<FacetId> owner_set(owners.begin(), owners.end());
    for (FacetId m : members) EXPECT_TRUE(owner_set.count(m) > 0);
  }
}

TEST_F(FacetModelTest, AmbiguousQueryHasMultipleFacets) {
  const std::string& token = facets_.concept_tokens()[0];
  EXPECT_GE(facets_.QueryFacets(token).size(), 2u);
}

TEST_F(FacetModelTest, DocumentsExistForAllUrls) {
  for (const Facet& f : facets_.facets()) {
    for (const auto& url : f.urls) {
      const UrlDocument* doc = facets_.FindDocument(url);
      ASSERT_NE(doc, nullptr);
      EXPECT_EQ(doc->facet, f.id);
      EXPECT_EQ(doc->category, f.category);
      EXPECT_FALSE(doc->term_vector.empty());
      EXPECT_FALSE(doc->title.empty());
    }
  }
  EXPECT_EQ(facets_.FindDocument("www.unknown.com"), nullptr);
}

TEST_F(FacetModelTest, TermVectorsSortedById) {
  const Facet& f = facets_.facets()[0];
  const UrlDocument* doc = facets_.FindDocument(f.urls[0]);
  ASSERT_NE(doc, nullptr);
  for (size_t i = 1; i < doc->term_vector.size(); ++i) {
    EXPECT_LT(doc->term_vector[i - 1].first, doc->term_vector[i].first);
  }
}

TEST_F(FacetModelTest, QueryFacetLookup) {
  const Facet& f = facets_.facets()[5];
  FacetId out;
  ASSERT_TRUE(facets_.QueryFacet(f.query_pool[1], &out));
  // Pool entry 1 is facet-specific (entry 0 may be an ambiguous token).
  auto owners = facets_.QueryFacets(f.query_pool[1]);
  EXPECT_TRUE(std::find(owners.begin(), owners.end(), f.id) != owners.end());
  EXPECT_FALSE(facets_.QueryFacet("no such query", &out));
}

TEST_F(FacetModelTest, QueryTermVectorNonEmptyForPoolQueries) {
  const Facet& f = facets_.facets()[3];
  auto vec = facets_.QueryTermVector(f.query_pool[2]);
  EXPECT_FALSE(vec.empty());
}

TEST_F(FacetModelTest, SamplersStayInRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    size_t qi = facets_.SampleQueryIndex(0, rng);
    EXPECT_LT(qi, facets_.facet(0).query_pool.size());
    size_t ui = facets_.SampleUrlIndex(0, rng);
    EXPECT_LT(ui, facets_.facet(0).urls.size());
  }
}

// -------------------------------------------------------- UserModel ----

TEST(UserModelTest, WeightsSumToOne) {
  Taxonomy tax = Taxonomy::BuildUniform(3, 4);
  Rng rng(1);
  FacetModel fm(tax, FacetModelConfig{}, rng);
  SimulatedUser user(0, fm, UserModelConfig{}, rng);
  for (double t : {0.0, 0.5, 1.0}) {
    auto w = user.FacetWeightsAt(t);
    double total = 0.0;
    for (double x : w) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(UserModelTest, PreferenceConcentratedOnSupport) {
  Taxonomy tax = Taxonomy::BuildUniform(3, 4);
  Rng rng(2);
  FacetModel fm(tax, FacetModelConfig{}, rng);
  UserModelConfig config;
  SimulatedUser user(0, fm, config, rng);
  auto w = user.FacetWeightsAt(0.0);
  double support_mass = 0.0;
  for (FacetId f : user.support()) support_mass += w[f];
  EXPECT_GT(support_mass, 1.0 - config.exploration_prob - 1e-9);
}

TEST(UserModelTest, BiasDeterministicAndBounded) {
  Taxonomy tax = Taxonomy::BuildUniform(3, 4);
  Rng rng(3);
  FacetModel fm(tax, FacetModelConfig{}, rng);
  SimulatedUser user(5, fm, UserModelConfig{}, rng);
  double b1 = user.Bias(2, 7, 0, 3.0);
  double b2 = user.Bias(2, 7, 0, 3.0);
  EXPECT_EQ(b1, b2);
  EXPECT_GE(b1, 1.0);
  EXPECT_LE(b1, 3.0);
  // Different streams give different biases (almost surely).
  EXPECT_NE(user.Bias(2, 7, 0, 3.0), user.Bias(2, 7, 1, 3.0));
}

TEST(UserModelTest, DifferentUsersDifferentBiases) {
  Taxonomy tax = Taxonomy::BuildUniform(3, 4);
  Rng rng(4);
  FacetModel fm(tax, FacetModelConfig{}, rng);
  SimulatedUser a(1, fm, UserModelConfig{}, rng);
  SimulatedUser b(2, fm, UserModelConfig{}, rng);
  EXPECT_NE(a.Bias(0, 0, 0, 3.0), b.Bias(0, 0, 0, 3.0));
}

// -------------------------------------------------------- Generator ----

class GeneratorTest : public testing::Test {
 protected:
  static GeneratorConfig SmallConfig() {
    GeneratorConfig config;
    config.num_users = 40;
    config.sessions_per_user_min = 4;
    config.sessions_per_user_max = 8;
    return config;
  }
};

TEST_F(GeneratorTest, Deterministic) {
  auto a = GenerateLog(SmallConfig());
  auto b = GenerateLog(SmallConfig());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]);
  }
}

TEST_F(GeneratorTest, GroundTruthAligned) {
  auto data = GenerateLog(SmallConfig());
  EXPECT_EQ(data.records.size(), data.record_facet.size());
  EXPECT_EQ(data.records.size(), data.record_session.size());
  EXPECT_FALSE(data.records.empty());
}

TEST_F(GeneratorTest, RecordsSortedPerUserInTime) {
  auto data = GenerateLog(SmallConfig());
  for (size_t i = 1; i < data.records.size(); ++i) {
    if (data.records[i].user_id == data.records[i - 1].user_id) {
      EXPECT_GE(data.records[i].timestamp, data.records[i - 1].timestamp);
    }
  }
}

TEST_F(GeneratorTest, QueriesAreCanonical) {
  auto data = GenerateLog(SmallConfig());
  for (size_t i = 0; i < data.records.size(); ++i) {
    auto owners = data.facets.QueryFacets(data.records[i].query);
    // The ground-truth facet owns the query string.
    EXPECT_TRUE(std::find(owners.begin(), owners.end(),
                          data.record_facet[i]) != owners.end());
  }
}

TEST_F(GeneratorTest, ClicksBelongToIntentFacet) {
  auto data = GenerateLog(SmallConfig());
  for (size_t i = 0; i < data.records.size(); ++i) {
    if (!data.records[i].has_click()) continue;
    const UrlDocument* doc =
        data.facets.FindDocument(data.records[i].clicked_url);
    ASSERT_NE(doc, nullptr);
    EXPECT_EQ(doc->facet, data.record_facet[i]);
  }
}

TEST_F(GeneratorTest, ClickRateNearConfig) {
  auto data = GenerateLog(SmallConfig());
  size_t clicks = 0;
  for (const auto& r : data.records) clicks += r.has_click() ? 1 : 0;
  double rate = static_cast<double>(clicks) /
                static_cast<double>(data.records.size());
  EXPECT_NEAR(rate, data.config.click_prob, 0.05);
}

TEST_F(GeneratorTest, SessionsShareFacet) {
  auto data = GenerateLog(SmallConfig());
  for (size_t i = 1; i < data.records.size(); ++i) {
    if (data.record_session[i] == data.record_session[i - 1]) {
      EXPECT_EQ(data.record_facet[i], data.record_facet[i - 1]);
    }
  }
}

TEST_F(GeneratorTest, QueryCategoryLookup) {
  auto data = GenerateLog(SmallConfig());
  CategoryId cat;
  ASSERT_TRUE(data.QueryCategory(data.records[0].query, &cat));
  EXPECT_LT(cat, data.taxonomy.size());
  EXPECT_FALSE(data.QueryCategory("never seen query", &cat));
}

TEST_F(GeneratorTest, AmbiguousHeadQueriesAppearInLog) {
  auto data = GenerateLog(SmallConfig());
  // At least one bare concept token should be used as a query in a log of
  // this size.
  size_t ambiguous_uses = 0;
  for (const auto& r : data.records) {
    if (data.facets.QueryFacets(r.query).size() >= 2) ++ambiguous_uses;
  }
  EXPECT_GT(ambiguous_uses, 0u);
}

}  // namespace
}  // namespace pqsda
