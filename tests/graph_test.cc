#include <cmath>

#include <gtest/gtest.h>

#include "graph/bipartite.h"
#include "graph/click_graph.h"
#include "graph/compact_builder.h"
#include "graph/csr_matrix.h"
#include "graph/multi_bipartite.h"

namespace pqsda {
namespace {

// The Table I log from the paper (sun/java example).
std::vector<QueryLogRecord> TableOneLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 120},
      {1, "jvm download", "", 200},
      {2, "sun", "www.suncellular.com", 100},
      {2, "solar cell", "en.wikipedia.org", 160},
      {3, "sun oracle", "www.oracle.com", 100},
      {3, "java", "www.java.com", 172},
  };
}

// -------------------------------------------------------- CsrMatrix ----

TEST(CsrMatrixTest, FromTripletsSumsDuplicates) {
  auto m = CsrMatrix::FromTriplets(2, 3, {{0, 1, 2.0}, {0, 1, 3.0},
                                          {1, 2, 1.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(CsrMatrixTest, ZeroEntriesDropped) {
  auto m = CsrMatrix::FromTriplets(1, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 0u);
}

// Regression guard for the row_ptr prefix fill: interior empty rows must
// get row_ptr[i] == row_ptr[i+1], not stale or skipped offsets.
TEST(CsrMatrixTest, FromTripletsInteriorEmptyRows) {
  auto m = CsrMatrix::FromTriplets(5, 3, {{0, 2, 1.0}, {3, 0, 2.0}});
  EXPECT_EQ(m.RowNnz(0), 1u);
  EXPECT_EQ(m.RowNnz(1), 0u);
  EXPECT_EQ(m.RowNnz(2), 0u);
  EXPECT_EQ(m.RowNnz(3), 1u);
  EXPECT_EQ(m.RowNnz(4), 0u);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.At(3, 0), 2.0);
}

// Trailing empty rows are the nastiest case (the epilogue fill must run
// past the last populated row): check row extents and MatVec against a
// dense reference.
TEST(CsrMatrixTest, FromTripletsTrailingEmptyRows) {
  auto m = CsrMatrix::FromTriplets(6, 4, {{0, 1, 1.0}, {1, 3, -2.0},
                                          {1, 0, 0.5}});
  EXPECT_EQ(m.nnz(), 3u);
  for (size_t i = 2; i < 6; ++i) {
    EXPECT_EQ(m.RowNnz(i), 0u) << "row " << i;
    EXPECT_TRUE(m.RowIndices(i).empty()) << "row " << i;
  }

  const double dense[6][4] = {{0.0, 1.0, 0.0, 0.0},
                              {0.5, 0.0, 0.0, -2.0},
                              {0.0, 0.0, 0.0, 0.0},
                              {0.0, 0.0, 0.0, 0.0},
                              {0.0, 0.0, 0.0, 0.0},
                              {0.0, 0.0, 0.0, 0.0}};
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y;
  m.MatVec(x, y);
  ASSERT_EQ(y.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    double expect = 0.0;
    for (size_t j = 0; j < 4; ++j) expect += dense[i][j] * x[j];
    EXPECT_DOUBLE_EQ(y[i], expect) << "row " << i;
  }
}

TEST(CsrMatrixTest, FromTripletsAllRowsEmpty) {
  auto m = CsrMatrix::FromTriplets(4, 4, {});
  EXPECT_EQ(m.nnz(), 0u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(m.RowNnz(i), 0u);
  std::vector<double> y;
  m.MatVec({1.0, 1.0, 1.0, 1.0}, y);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CsrMatrixTest, MatVec) {
  auto m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 1, 2.0},
                                          {1, 1, 3.0}});
  std::vector<double> y;
  m.MatVec({1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(CsrMatrixTest, TransposeMatVecMatchesTranspose) {
  auto m = CsrMatrix::FromTriplets(2, 3,
                                   {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 4.0}});
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y1, y2;
  m.TransposeMatVec(x, y1);
  m.Transpose().MatVec(x, y2);
  ASSERT_EQ(y1.size(), y2.size());
  for (size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(CsrMatrixTest, TransposeShapeAndValues) {
  auto m = CsrMatrix::FromTriplets(2, 3, {{0, 2, 5.0}, {1, 0, 7.0}});
  auto t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 7.0);
}

TEST(CsrMatrixTest, RowNormalized) {
  auto m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 1, 3.0}});
  auto n = m.RowNormalized();
  EXPECT_DOUBLE_EQ(n.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(n.At(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(n.RowSum(1), 0.0);  // empty row stays empty
}

TEST(CsrMatrixTest, ScaleColumnsAndScale) {
  auto m = CsrMatrix::FromTriplets(1, 2, {{0, 0, 2.0}, {0, 1, 4.0}});
  m.ScaleColumns({10.0, 0.5});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  m.Scale(0.5);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 10.0);
}

TEST(CsrMatrixTest, MultiplySelfTranspose) {
  // W = [1 1 0; 0 1 1] -> WW^T = [2 1; 1 2].
  auto w = CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}, {1, 2, 1.0}});
  auto a = w.MultiplySelfTranspose();
  EXPECT_DOUBLE_EQ(a.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 2.0);
}

TEST(CsrMatrixTest, MultiplySelfTransposeDropTolerance) {
  auto w = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 0.001}, {1, 1, 1.0}});
  auto a = w.MultiplySelfTranspose(0.01);
  // Off-diagonal 0.001 is pruned.
  EXPECT_DOUBLE_EQ(a.At(0, 1), 0.0);
  EXPECT_GT(a.At(0, 0), 0.0);
}

// -------------------------------------------------------- Bipartite ----

TEST(BipartiteTest, BuilderCountsDegrees) {
  BipartiteGraph::Builder b;
  b.AddEdge(0, 0, 1.0);
  b.AddEdge(1, 0, 2.0);
  b.AddEdge(1, 1, 1.0);
  auto g = std::move(b).Build(3, 2);
  EXPECT_EQ(g.num_queries(), 3u);
  EXPECT_EQ(g.num_objects(), 2u);
  EXPECT_EQ(g.ObjectQueryDegree(0), 2u);
  EXPECT_EQ(g.ObjectQueryDegree(1), 1u);
}

TEST(BipartiteTest, IqfHigherForRareObjects) {
  BipartiteGraph::Builder b;
  // Object 0 touched by all 3 queries; object 1 by one.
  b.AddEdge(0, 0, 1.0);
  b.AddEdge(1, 0, 1.0);
  b.AddEdge(2, 0, 1.0);
  b.AddEdge(2, 1, 1.0);
  auto g = std::move(b).Build(3, 2);
  EXPECT_LT(g.Iqf(0), g.Iqf(1));
  EXPECT_NEAR(g.Iqf(0), 0.0, 1e-12);                 // log(3/3)
  EXPECT_NEAR(g.Iqf(1), std::log(3.0), 1e-12);        // log(3/1)
}

TEST(BipartiteTest, ApplyIqfScalesEdges) {
  BipartiteGraph::Builder b;
  b.AddEdge(0, 0, 2.0);
  b.AddEdge(1, 1, 1.0);
  auto g = std::move(b).Build(2, 2);
  auto w = g.ApplyIqf();
  // Both objects have degree 1 of 2 queries -> iqf = log 2.
  EXPECT_NEAR(w.query_to_object().At(0, 0), 2.0 * std::log(2.0), 1e-12);
  EXPECT_NEAR(w.query_to_object().At(1, 1), std::log(2.0), 1e-12);
  // Degrees preserved.
  EXPECT_EQ(w.ObjectQueryDegree(0), 1u);
}

// ------------------------------------------------------- ClickGraph ----

TEST(ClickGraphTest, BuildsFromTableOne) {
  auto cg = ClickGraph::Build(TableOneLog(), EdgeWeighting::kRaw);
  // 6 distinct queries, 5 distinct urls (www.java.com is clicked twice).
  EXPECT_EQ(cg.num_queries(), 6u);
  EXPECT_EQ(cg.urls().size(), 5u);
  StringId sun = cg.QueryId("sun");
  ASSERT_NE(sun, kInvalidStringId);
  // "sun" clicked 2 urls.
  EXPECT_EQ(cg.graph().query_to_object().RowNnz(sun), 2u);
  // "jvm download" has no click -> isolated node.
  StringId jvm = cg.QueryId("jvm download");
  EXPECT_EQ(cg.graph().query_to_object().RowNnz(jvm), 0u);
}

TEST(ClickGraphTest, ForwardRowsStochastic) {
  auto cg = ClickGraph::Build(TableOneLog(), EdgeWeighting::kRaw);
  for (size_t q = 0; q < cg.num_queries(); ++q) {
    double s = cg.forward().RowSum(q);
    EXPECT_TRUE(std::abs(s - 1.0) < 1e-9 || s == 0.0);
  }
}

TEST(ClickGraphTest, SharedUrlConnectsQueries) {
  auto cg = ClickGraph::Build(TableOneLog(), EdgeWeighting::kRaw);
  // "sun" and "java" share www.java.com.
  StringId u = cg.urls().Lookup("www.java.com");
  ASSERT_NE(u, kInvalidStringId);
  EXPECT_EQ(cg.graph().object_to_query().RowNnz(u), 2u);
}

// ---------------------------------------------------- MultiBipartite ----

TEST(MultiBipartiteTest, ThreeBipartitesBuilt) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  EXPECT_EQ(mb.num_queries(), 6u);
  EXPECT_GT(mb.graph(BipartiteKind::kUrl).num_objects(), 0u);
  EXPECT_EQ(mb.graph(BipartiteKind::kSession).num_objects(), sessions.size());
  EXPECT_GT(mb.graph(BipartiteKind::kTerm).num_objects(), 0u);
}

TEST(MultiBipartiteTest, TermBipartiteConnectsSharedTerms) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  StringId sun_term = mb.terms().Lookup("sun");
  ASSERT_NE(sun_term, kInvalidStringId);
  // Queries containing "sun": sun, sun java, sun oracle.
  EXPECT_EQ(mb.graph(BipartiteKind::kTerm).object_to_query().RowNnz(sun_term),
            3u);
}

TEST(MultiBipartiteTest, SessionBipartiteReachesSessionMates) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  // Paper's point: via the session bipartite "sun" reaches "jvm download"
  // (user 1's session) even though they share no URL or term.
  StringId sun = mb.QueryId("sun");
  StringId jvm = mb.QueryId("jvm download");
  const auto& g = mb.graph(BipartiteKind::kSession);
  bool connected = false;
  auto sun_sessions = g.query_to_object().RowIndices(sun);
  for (uint32_t s : sun_sessions) {
    for (uint32_t q : g.object_to_query().RowIndices(s)) {
      if (q == jvm) connected = true;
    }
  }
  EXPECT_TRUE(connected);
}

TEST(MultiBipartiteTest, QueryCountsTrackOccurrences) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  StringId sun = mb.QueryId("sun");
  EXPECT_EQ(mb.query_counts()[sun], 2u);  // two users searched "sun"
}

TEST(MultiBipartiteTest, WeightedModeChangesWeights) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto raw = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  auto wtd = MultiBipartite::Build(records, sessions, EdgeWeighting::kCfIqf);
  StringId sun = raw.QueryId("sun");
  double raw_sum = raw.graph(BipartiteKind::kTerm).query_to_object().RowSum(sun);
  double wtd_sum = wtd.graph(BipartiteKind::kTerm).query_to_object().RowSum(sun);
  EXPECT_NE(raw_sum, wtd_sum);
}

// ---------------------------------------------------- CompactBuilder ----

TEST(CompactBuilderTest, SeedsComeFirst) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  StringId sun = mb.QueryId("sun");
  auto rep = builder.Build(sun, {}, CompactBuilderOptions{10, 4});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->queries[0], sun);
  EXPECT_EQ(rep->local_index.at(sun), 0u);
}

TEST(CompactBuilderTest, ExpandsToNeighbors) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  auto rep = builder.Build(mb.QueryId("sun"), {}, CompactBuilderOptions{10, 4});
  ASSERT_TRUE(rep.ok());
  // In this tiny log everything is reachable from "sun".
  EXPECT_EQ(rep->size(), 6u);
}

TEST(CompactBuilderTest, RespectsTargetSize) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  auto rep = builder.Build(mb.QueryId("sun"), {}, CompactBuilderOptions{3, 4});
  ASSERT_TRUE(rep.ok());
  EXPECT_LE(rep->size(), 3u);
}

TEST(CompactBuilderTest, InvalidInputRejected) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  auto rep = builder.Build(999, {}, CompactBuilderOptions{});
  EXPECT_FALSE(rep.ok());
  auto rep2 = builder.Build(0, {}, CompactBuilderOptions{0, 4});
  EXPECT_FALSE(rep2.ok());
}

TEST(CompactBuilderTest, MatricesConsistent) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  auto rep = builder.Build(mb.QueryId("sun"), {}, CompactBuilderOptions{10, 4});
  ASSERT_TRUE(rep.ok());
  for (BipartiteKind kind : kAllBipartites) {
    const CsrMatrix& w = rep->W(kind);
    EXPECT_EQ(w.rows(), rep->size());
    const CsrMatrix& p = rep->P(kind);
    EXPECT_EQ(p.rows(), rep->size());
    EXPECT_EQ(p.cols(), rep->size());
    for (size_t i = 0; i < p.rows(); ++i) {
      double s = p.RowSum(i);
      EXPECT_TRUE(std::abs(s - 1.0) < 1e-9 || s == 0.0);
    }
    // S is symmetric.
    const CsrMatrix& sym = rep->S(kind);
    for (size_t i = 0; i < sym.rows(); ++i) {
      auto idx = sym.RowIndices(i);
      auto val = sym.RowValues(i);
      for (size_t k2 = 0; k2 < idx.size(); ++k2) {
        EXPECT_NEAR(sym.At(idx[k2], i), val[k2], 1e-9);
      }
    }
  }
}

TEST(CompactBuilderTest, BuildFromSeedsMultipleSeeds) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  StringId a = mb.QueryId("sun java");
  StringId b = mb.QueryId("solar cell");
  auto rep = builder.BuildFromSeeds({a, b}, CompactBuilderOptions{10, 4});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->local_index.at(a), 0u);
  EXPECT_EQ(rep->local_index.at(b), 1u);
  EXPECT_GE(rep->size(), 2u);
}

TEST(CompactBuilderTest, BuildFromSeedsRejectsEmptyAndInvalid) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  EXPECT_FALSE(builder.BuildFromSeeds({}, CompactBuilderOptions{}).ok());
  EXPECT_FALSE(builder.BuildFromSeeds({9999}, CompactBuilderOptions{}).ok());
}

TEST(CompactBuilderTest, ContextIncludedAsSeed) {
  auto records = TableOneLog();
  auto sessions = Sessionize(records);
  auto mb = MultiBipartite::Build(records, sessions, EdgeWeighting::kRaw);
  CompactBuilder builder(mb);
  StringId sun = mb.QueryId("sun");
  StringId java = mb.QueryId("java");
  auto rep = builder.Build(sun, {java}, CompactBuilderOptions{10, 4});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->local_index.at(java), 1u);
}

}  // namespace
}  // namespace pqsda
