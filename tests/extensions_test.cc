// Tests of the scalability/production extensions: the offline profile
// store (§V-A "concise enough for offline storage"), approximate-
// distributed parallel Gibbs ([31]) and the parallel Jacobi solver.

#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "core/profile_store.h"
#include "log/sessionizer.h"
#include "solver/linear_solvers.h"
#include "synthetic/generator.h"
#include "topic/parallel_lda.h"
#include "topic/perplexity.h"

namespace pqsda {
namespace {

struct Fixture {
  Fixture() {
    GeneratorConfig config;
    config.num_users = 40;
    config.sessions_per_user_min = 8;
    config.sessions_per_user_max = 12;
    config.facet_config.num_facets = 12;
    config.facet_config.queries_per_facet = 60;
    data = std::make_unique<SyntheticDataset>(GenerateLog(config));
    auto sessions = Sessionize(data->records);
    corpus = QueryLogCorpus::Build(data->records, sessions);
  }
  std::unique_ptr<SyntheticDataset> data;
  QueryLogCorpus corpus;
};

Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

// ----------------------------------------------------- ProfileStore ----

TEST(ProfileStoreTest, FromUpmCoversAllUsers) {
  auto& fx = fixture();
  UpmOptions options;
  options.base.num_topics = 6;
  options.base.gibbs_iterations = 10;
  options.learn_hyperparameters = false;
  UpmModel upm(options);
  upm.Train(fx.corpus);
  ProfileStore store = ProfileStore::FromUpm(upm, fx.corpus);
  EXPECT_EQ(store.size(), fx.corpus.num_documents());
  EXPECT_EQ(store.num_topics(), 6u);
  const UserProfile* p = store.Find(fx.corpus.documents()[0].user);
  ASSERT_NE(p, nullptr);
  double total = 0.0;
  for (double v : p->theta) total += v;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(ProfileStoreTest, SaveLoadRoundTrip) {
  ProfileStore store;
  store.Put(UserProfile{3, {0.5, 0.25, 0.25}});
  store.Put(UserProfile{9, {0.1, 0.8, 0.1}});
  std::string path = testing::TempDir() + "/profiles.tsv";
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = ProfileStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  const UserProfile* p = loaded->Find(9);
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->theta[1], 0.8, 1e-9);
  EXPECT_EQ(loaded->Find(42), nullptr);
  std::remove(path.c_str());
}

TEST(ProfileStoreTest, LoadErrors) {
  EXPECT_FALSE(ProfileStore::Load("/no/such/file.tsv").ok());
  std::string path = testing::TempDir() + "/bad_profiles.tsv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("notanumber\t0.5\n", f);
  fclose(f);
  auto loaded = ProfileStore::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ProfileStoreTest, UserSimilarity) {
  ProfileStore store;
  store.Put(UserProfile{1, {1.0, 0.0}});
  store.Put(UserProfile{2, {1.0, 0.0}});
  store.Put(UserProfile{3, {0.0, 1.0}});
  EXPECT_NEAR(store.UserSimilarity(1, 2), 1.0, 1e-9);
  EXPECT_NEAR(store.UserSimilarity(1, 3), 0.0, 1e-9);
  EXPECT_EQ(store.UserSimilarity(1, 99), 0.0);
}

TEST(ProfileStoreTest, PutReplaces) {
  ProfileStore store;
  store.Put(UserProfile{1, {1.0, 0.0}});
  store.Put(UserProfile{1, {0.0, 1.0}});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NEAR(store.Find(1)->theta[1], 1.0, 1e-9);
}

// ----------------------------------------------------- ParallelLda ----

TEST(ParallelLdaTest, TrainsAndPredictsLikeSerial) {
  auto& fx = fixture();
  TopicModelOptions options;
  options.num_topics = 6;
  options.gibbs_iterations = 20;
  QueryLogCorpus train, test;
  fx.corpus.SplitBySessions(0.25, &train, &test);

  ParallelLdaModel parallel(options, /*threads=*/2);
  EXPECT_EQ(parallel.threads(), 2u);
  parallel.Train(train);
  auto p = parallel.PredictiveWordDistribution(0);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);

  // Quality parity: parallel perplexity within 15% of serial.
  LdaModel serial(options);
  serial.Train(train);
  double pp_parallel = EvaluatePerplexity(parallel, test).perplexity;
  double pp_serial = EvaluatePerplexity(serial, test).perplexity;
  EXPECT_LT(pp_parallel, pp_serial * 1.15);
}

TEST(ParallelLdaTest, SingleThreadWorks) {
  auto& fx = fixture();
  TopicModelOptions options;
  options.num_topics = 4;
  options.gibbs_iterations = 5;
  ParallelLdaModel model(options, /*threads=*/1);
  model.Train(fx.corpus);
  auto theta = model.DocumentTopicMixture(0);
  EXPECT_EQ(theta.size(), 4u);
}

TEST(ParallelLdaTest, CountsStayConsistent) {
  auto& fx = fixture();
  TopicModelOptions options;
  options.num_topics = 4;
  options.gibbs_iterations = 8;
  ParallelLdaModel model(options, /*threads=*/3);
  model.Train(fx.corpus);
  // Total token mass must be preserved through the shard merges.
  size_t total_words = 0;
  for (const auto& doc : fx.corpus.documents()) total_words += doc.TotalWords();
  double mixture_mass = 0.0;
  for (size_t k = 0; k < 4; ++k) {
    auto phi = model.TopicWordDistribution(k);
    double s = 0.0;
    for (double v : phi) s += v;
    mixture_mass += s;
  }
  EXPECT_NEAR(mixture_mass, 4.0, 1e-6);
  (void)total_words;
}

// ----------------------------------------------- JacobiSolveParallel ----

TEST(ParallelJacobiTest, MatchesSerialSolution) {
  auto a = CsrMatrix::FromTriplets(
      4, 4, {{0, 0, 5.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 5.0},
             {1, 2, -2.0}, {2, 1, -2.0}, {2, 2, 6.0}, {2, 3, -1.0},
             {3, 2, -1.0}, {3, 3, 4.0}});
  std::vector<double> b = {1.0, -2.0, 3.0, 0.5};
  std::vector<double> xs, xp;
  auto rs = JacobiSolve(a, b, xs, SolverOptions{});
  auto rp = JacobiSolveParallel(a, b, xp, SolverOptions{}, 3);
  EXPECT_TRUE(rs.converged);
  EXPECT_TRUE(rp.converged);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(xs[i], xp[i], 1e-7);
  // Jacobi is deterministic regardless of thread count.
  EXPECT_EQ(rs.iterations, rp.iterations);
}

TEST(ParallelJacobiTest, MoreThreadsThanRows) {
  auto a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0}, {1, 1, 4.0}});
  std::vector<double> b = {2.0, 8.0};
  std::vector<double> x;
  auto r = JacobiSolveParallel(a, b, x, SolverOptions{}, 16);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

}  // namespace
}  // namespace pqsda
