#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/pqsda_engine.h"
#include "rank/borda.h"
#include "synthetic/generator.h"

namespace pqsda {
namespace {

// ------------------------------------------------------------ Borda ----

TEST(BordaTest, SingleListUnchangedOrder) {
  std::vector<Suggestion> list = {{"a", 3.0}, {"b", 2.0}, {"c", 1.0}};
  auto out = BordaAggregate({list});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].query, "a");
  EXPECT_EQ(out[1].query, "b");
  EXPECT_EQ(out[2].query, "c");
}

TEST(BordaTest, AgreementReinforces) {
  std::vector<Suggestion> l1 = {{"a", 0}, {"b", 0}, {"c", 0}};
  std::vector<Suggestion> l2 = {{"a", 0}, {"c", 0}, {"b", 0}};
  auto out = BordaAggregate({l1, l2});
  EXPECT_EQ(out[0].query, "a");  // top in both
}

TEST(BordaTest, DisagreementAverages) {
  std::vector<Suggestion> l1 = {{"a", 0}, {"b", 0}, {"c", 0}};
  std::vector<Suggestion> l2 = {{"c", 0}, {"b", 0}, {"a", 0}};
  auto out = BordaAggregate({l1, l2});
  // a: 3+1=4, b: 2+2=4, c: 1+3=4 -> stable tie-break keeps first-list order.
  EXPECT_EQ(out[0].query, "a");
  EXPECT_EQ(out[1].query, "b");
  EXPECT_EQ(out[2].query, "c");
  EXPECT_DOUBLE_EQ(out[0].score, out[2].score);
}

TEST(BordaTest, MissingItemsGetNoPoints) {
  std::vector<Suggestion> l1 = {{"a", 0}, {"b", 0}};
  std::vector<Suggestion> l2 = {{"b", 0}};
  auto out = BordaAggregate({l1, l2});
  // Universe {a, b}: a gets 2 (from l1), b gets 1 + 2 = 3.
  EXPECT_EQ(out[0].query, "b");
}

TEST(BordaTest, EmptyInput) {
  EXPECT_TRUE(BordaAggregate({}).empty());
  EXPECT_TRUE(BordaAggregate({{}, {}}).empty());
}

TEST(RankByScoreTest, DescendingByScore) {
  auto out = RankByScore({"x", "y", "z"}, {0.1, 0.9, 0.5});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].query, "y");
  EXPECT_EQ(out[1].query, "z");
  EXPECT_EQ(out[2].query, "x");
}

// ------------------------------------------------------ PqsdaEngine ----

class EngineTest : public testing::Test {
 protected:
  static const SyntheticDataset& data() {
    static SyntheticDataset* d = [] {
      GeneratorConfig config;
      config.num_users = 50;
      config.sessions_per_user_min = 6;
      config.sessions_per_user_max = 12;
      config.facet_config.num_facets = 16;
      config.facet_config.num_concepts = 4;
      return new SyntheticDataset(GenerateLog(config));
    }();
    return *d;
  }

  static PqsdaEngineConfig FastConfig(bool personalize) {
    PqsdaEngineConfig config;
    config.personalize = personalize;
    config.diversifier.compact.target_size = 120;
    config.upm.base.num_topics = 8;
    config.upm.base.gibbs_iterations = 15;
    config.upm.hyper_rounds = 0;
    config.upm.learn_hyperparameters = false;
    return config;
  }

  static SuggestionRequest AmbiguousRequest(UserId user) {
    SuggestionRequest r;
    r.query = data().facets.concept_tokens()[0];
    r.timestamp = data().config.start_time + 1000;
    r.user = user;
    return r;
  }
};

TEST_F(EngineTest, RejectsEmptyLog) {
  auto engine = PqsdaEngine::Build({}, PqsdaEngineConfig{});
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, DiversificationOnlyMode) {
  auto engine = PqsdaEngine::Build(data().records, FastConfig(false));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->upm(), nullptr);
  EXPECT_EQ((*engine)->personalizer(), nullptr);
  auto out = (*engine)->Suggest(AmbiguousRequest(kNoUser), 8);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->size(), 3u);
}

TEST_F(EngineTest, FullPipelineSuggests) {
  auto engine = PqsdaEngine::Build(data().records, FastConfig(true));
  ASSERT_TRUE(engine.ok());
  ASSERT_NE((*engine)->upm(), nullptr);
  auto out = (*engine)->Suggest(AmbiguousRequest(3), 8);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->size(), 3u);
  // The input query itself never appears.
  for (const auto& s : *out) EXPECT_NE(s.query, AmbiguousRequest(3).query);
}

TEST_F(EngineTest, PersonalizationReordersForSomeUser) {
  auto engine = PqsdaEngine::Build(data().records, FastConfig(true));
  ASSERT_TRUE(engine.ok());
  auto diversified = (*engine)->diversifier().Suggest(AmbiguousRequest(kNoUser), 8);
  ASSERT_TRUE(diversified.ok());
  // Across users, at least one personalized ranking must differ from the
  // diversified order (otherwise personalization is a no-op).
  bool any_reorder = false;
  for (UserId u = 0; u < 20 && !any_reorder; ++u) {
    auto personalized = (*engine)->personalizer()->Rerank(u, *diversified);
    for (size_t i = 0; i < personalized.size(); ++i) {
      if (personalized[i].query != (*diversified)[i].query) any_reorder = true;
    }
  }
  EXPECT_TRUE(any_reorder);
}

TEST_F(EngineTest, RerankPreservesItemSet) {
  auto engine = PqsdaEngine::Build(data().records, FastConfig(true));
  ASSERT_TRUE(engine.ok());
  auto diversified =
      (*engine)->diversifier().Suggest(AmbiguousRequest(kNoUser), 8);
  ASSERT_TRUE(diversified.ok());
  auto personalized = (*engine)->personalizer()->Rerank(1, *diversified);
  ASSERT_EQ(personalized.size(), diversified->size());
  std::set<std::string> before, after;
  for (const auto& s : *diversified) before.insert(s.query);
  for (const auto& s : personalized) after.insert(s.query);
  EXPECT_EQ(before, after);
}

TEST_F(EngineTest, UnknownUserGetsDiversifiedList) {
  auto engine = PqsdaEngine::Build(data().records, FastConfig(true));
  ASSERT_TRUE(engine.ok());
  auto diversified =
      (*engine)->diversifier().Suggest(AmbiguousRequest(kNoUser), 6);
  auto via_engine = (*engine)->Suggest(AmbiguousRequest(kNoUser), 6);
  ASSERT_TRUE(diversified.ok() && via_engine.ok());
  ASSERT_EQ(diversified->size(), via_engine->size());
  for (size_t i = 0; i < diversified->size(); ++i) {
    EXPECT_EQ((*diversified)[i].query, (*via_engine)[i].query);
  }
}

TEST_F(EngineTest, PreferenceScoreNonNegative) {
  auto engine = PqsdaEngine::Build(data().records, FastConfig(true));
  ASSERT_TRUE(engine.ok());
  double s = (*engine)->personalizer()->PreferenceScore(
      0, data().records[0].query);
  EXPECT_GE(s, 0.0);
  // Unknown user scores 0.
  EXPECT_EQ((*engine)->personalizer()->PreferenceScore(9999, "anything"), 0.0);
}

}  // namespace
}  // namespace pqsda
