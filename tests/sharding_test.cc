// The shard-count-invariance differential harness for the scatter-gather
// serving path: a ShardedEngine must serve *bitwise-identical* suggestion
// lists (queries, double scores, order — checked both element-wise and via
// Fingerprint64) to the unsharded PqsdaEngine, for every shard count,
// with and without personalization, under concurrent serving threads, and
// under rebuild churn including one shard held back mid-swap. Clusters:
//
//  1. Routing/partition units: query-hash routing is deterministic and
//     in-range; ownership covers every query exactly once; hot-row
//     replication honors its threshold; per-shard content fingerprints are
//     id-renumbering-proof and move only for shards whose slice changed.
//  2. The headline differential property: ShardedEngine(N) == PqsdaEngine
//     for N in {1,2,4,8}, personalization on and off, including NotFound
//     probes and term-match-seeded unknown queries, sequentially and from
//     concurrent threads (this file is part of the TSAN/ASan suites
//     run_benches.sh re-runs).
//  3. Merge-correctness units: the ShardedWalkBackend gather pinned against
//     the scalar (null-backend) reference on adversarial inputs — every
//     possible primary (duplicates across shards, empty per-shard pools),
//     all rows remote, score ties at the merge boundary whose admission
//     order is decided purely by accumulation order, and a degraded shard
//     dropping exactly its cold rows (pinned against a censoring reference
//     backend).
//  4. Rebuild churn: equivalence after chunked ingest, the consistent cut
//     under a faults::kShardSwapHoldback mid-swap experiment, and a
//     serve-during-churn stress where every response must match exactly one
//     published generation.
//  5. The cache regression: validation vectors make a single-shard swap
//     invalidate only entries that touched that shard.

#include <algorithm>
#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "core/index_manager.h"
#include "core/pqsda_engine.h"
#include "core/sharded_engine.h"
#include "graph/compact_builder.h"
#include "graph/shard_partition.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "synthetic/generator.h"

namespace pqsda {
namespace {

// ------------------------------------------------------- shared rig ----

// Same structured synthetic log the ingest equivalence suite uses: enough
// co-session/co-click signal for multi-entry lists.
std::vector<QueryLogRecord> ShardLog() {
  GeneratorConfig config;
  config.num_users = 20;
  config.sessions_per_user_min = 6;
  config.sessions_per_user_max = 12;
  config.seed = 23;
  return GenerateLog(config).records;
}

PqsdaEngineConfig ShardConfig(bool personalize) {
  PqsdaEngineConfig config;
  config.personalize = personalize;
  config.cache_capacity = 0;  // every request walks the full pipeline
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 8;
  config.upm.hyper_rounds = 1;
  return config;
}

ShardedEngineOptions ShardOptions(size_t shards) {
  ShardedEngineOptions options;
  options.shards = shards;
  return options;
}

// Fixed probes drawn from the log (plus one personalized form each), then
// the adversarial extras: a query no engine knows (must be NotFound on
// both sides) and an unknown query sharing a term with the corpus (the
// term-match seeding path, which expands from cross-shard seeds).
std::vector<SuggestionRequest> ShardProbes(
    const std::vector<QueryLogRecord>& records) {
  std::vector<SuggestionRequest> requests;
  std::vector<std::string> seen;
  int64_t max_ts = 0;
  for (const auto& r : records) max_ts = std::max(max_ts, r.timestamp);
  for (const auto& r : records) {
    if (std::find(seen.begin(), seen.end(), r.query) != seen.end()) continue;
    seen.push_back(r.query);
    SuggestionRequest request;
    request.query = r.query;
    request.timestamp = max_ts + 100;
    requests.push_back(request);
    SuggestionRequest personalized = request;
    personalized.user = r.user_id;
    requests.push_back(std::move(personalized));
    if (requests.size() >= 12) break;
  }
  SuggestionRequest unknown;
  unknown.query = "zz unknown zz probe";
  unknown.timestamp = max_ts + 100;
  requests.push_back(unknown);
  SuggestionRequest term_match;
  // First token of a known query + an unknown one: seeds via the term rows.
  term_match.query =
      records.front().query.substr(0, records.front().query.find(' ')) +
      " zzunknownzz";
  term_match.timestamp = max_ts + 100;
  requests.push_back(std::move(term_match));
  return requests;
}

uint64_t FingerprintOfList(const std::vector<Suggestion>& list) {
  obs::Fingerprint64 fp;
  for (const auto& s : list) {
    fp.Mix(s.query);
    fp.MixDouble(s.score);
  }
  return fp.value();
}

// NotFound is recorded as an empty list (it must then be NotFound on the
// other engine too — any other status fails the probe).
template <typename Engine>
std::vector<std::vector<Suggestion>> ServeProbes(
    const Engine& engine, const std::vector<SuggestionRequest>& probes) {
  std::vector<std::vector<Suggestion>> lists;
  for (const auto& probe : probes) {
    auto result = engine.Suggest(probe, 10);
    if (result.ok()) {
      lists.push_back(std::move(result).value());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kNotFound)
          << result.status().ToString();
      lists.emplace_back();
    }
  }
  return lists;
}

// Bitwise equality: query strings, double scores (no tolerance), order —
// and the Fingerprint64 the request log would record.
void ExpectIdenticalLists(const std::vector<std::vector<Suggestion>>& a,
                          const std::vector<std::vector<Suggestion>>& b,
                          const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << label << " probe " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].query, b[i][j].query)
          << label << " probe " << i << " rank " << j;
      EXPECT_EQ(a[i][j].score, b[i][j].score)
          << label << " probe " << i << " rank " << j;
    }
    EXPECT_EQ(FingerprintOfList(a[i]), FingerprintOfList(b[i]))
        << label << " probe " << i;
  }
}

// Finds a query string the router places on `shard` (the tests craft
// corpora with known shard geometry this way — hashes are opaque but
// queryable).
std::string QueryOnShard(const ShardRouter& router, size_t shard,
                         const std::string& stem) {
  for (int i = 0;; ++i) {
    std::string q = stem + std::to_string(i);
    if (router.QueryShardOf(q) == shard) return q;
  }
}

// Resets the process-wide injector around every test: the holdback and
// per-shard degradation experiments arm value overrides that must never
// leak between tests.
class ShardingTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::Default().Reset(); }
  void TearDown() override { FaultInjector::Default().Reset(); }
};

// ------------------------------------------- routing / partitioning ----

TEST_F(ShardingTest, RouterIsDeterministicAndInRange) {
  ShardRouter router{4};
  std::vector<size_t> hits(4, 0);
  for (int i = 0; i < 64; ++i) {
    const std::string q = "probe query " + std::to_string(i);
    const size_t s = router.QueryShardOf(q);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, router.QueryShardOf(q));  // stable
    ++hits[s];
    ASSERT_LT(router.UserShardOf(static_cast<UserId>(i)), 4u);
  }
  // Not degenerate: 64 distinct strings must spread over >1 shard.
  EXPECT_GT(std::count_if(hits.begin(), hits.end(),
                          [](size_t h) { return h > 0; }),
            1);
  // N=1 routes everything to shard 0 (the differential bridge case).
  ShardRouter single{1};
  EXPECT_EQ(single.QueryShardOf("anything"), 0u);
  EXPECT_EQ(single.UserShardOf(7), 0u);
}

TEST_F(ShardingTest, PartitionOwnershipCoversEveryQueryExactlyOnce) {
  auto snap = BuildIndexSnapshot(ShardLog(), ShardConfig(false), 0);
  ASSERT_TRUE(snap.ok());
  const MultiBipartite& mb = *(*snap)->mb;

  ShardPartitionOptions options;
  options.shards = 4;
  options.hot_row_min_degree = 0;  // strict ownership
  const ShardPartition part = BuildShardPartition(mb, options);

  size_t owned = 0;
  for (const auto& shard : part.shard) owned += shard.owned_queries;
  EXPECT_EQ(owned, mb.num_queries());
  EXPECT_EQ(part.replicated_rows, 0u);

  ShardRouter router{4};
  for (StringId q = 0; q < mb.num_queries(); ++q) {
    const size_t owner = part.query_owner[q];
    EXPECT_EQ(owner, router.QueryShardOf(mb.QueryString(q)));
    for (size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(part.Owns(s, q), s == owner);
      EXPECT_EQ(part.HasRow(s, q), s == owner);  // no hot rows
    }
  }

  // With a low threshold, hot rows exist and are readable everywhere while
  // ownership (and the owned_queries accounting) is unchanged.
  options.hot_row_min_degree = 2;
  const ShardPartition hot = BuildShardPartition(mb, options);
  EXPECT_GT(hot.replicated_rows, 0u);
  size_t hot_owned = 0;
  for (const auto& shard : hot.shard) hot_owned += shard.owned_queries;
  EXPECT_EQ(hot_owned, mb.num_queries());
  for (StringId q = 0; q < mb.num_queries(); ++q) {
    if (!hot.hot[q]) continue;
    for (size_t s = 0; s < 4; ++s) EXPECT_TRUE(hot.HasRow(s, q));
  }
}

// Two disjoint query clusters with known shard geometry (queries crafted
// onto shard 0 / shard 1 of a 2-way router), raw weighting so there is no
// global IQF coupling between them.
struct ClusterRig {
  ShardRouter router{2};
  std::vector<std::string> a;  // shard-0 cluster
  std::vector<std::string> b;  // shard-1 cluster
  std::vector<QueryLogRecord> records;
};

ClusterRig MakeClusterRig() {
  ClusterRig rig;
  for (int i = 0; i < 3; ++i) {
    rig.a.push_back(QueryOnShard(rig.router, 0, "alpha" + std::to_string(i)));
    rig.b.push_back(QueryOnShard(rig.router, 1, "beta" + std::to_string(i)));
  }
  // Co-session + co-click structure inside each cluster, nothing across.
  rig.records = {
      {1, rig.a[0], "ua0.com", 100},  {1, rig.a[1], "ua1.com", 150},
      {2, rig.a[1], "ua1.com", 100},  {2, rig.a[2], "ua2.com", 140},
      {7, rig.a[0], "ua0.com", 300},  {7, rig.a[2], "ua2.com", 360},
      {3, rig.b[0], "ub0.com", 100},  {3, rig.b[1], "ub1.com", 150},
      {4, rig.b[1], "ub1.com", 100},  {4, rig.b[2], "ub2.com", 140},
      {8, rig.b[0], "ub0.com", 300},  {8, rig.b[2], "ub2.com", 360},
  };
  return rig;
}

PqsdaEngineConfig ClusterConfig() {
  PqsdaEngineConfig config;
  config.personalize = false;
  config.weighting = EdgeWeighting::kRaw;
  config.cache_capacity = 0;
  return config;
}

TEST_F(ShardingTest, ContentFingerprintMovesOnlyForTheChangedShard) {
  ClusterRig rig = MakeClusterRig();
  const auto config = ClusterConfig();
  ShardPartitionOptions options;
  options.shards = 2;
  options.hot_row_min_degree = 0;

  auto base = BuildIndexSnapshot(rig.records, config, 0);
  ASSERT_TRUE(base.ok());
  const ShardPartition part0 = BuildShardPartition(*(*base)->mb, options);

  // Same records again: fingerprints are a pure function of content.
  auto again = BuildIndexSnapshot(rig.records, config, 1);
  ASSERT_TRUE(again.ok());
  const ShardPartition part0b = BuildShardPartition(*(*again)->mb, options);
  EXPECT_EQ(part0.shard[0].content_fingerprint,
            part0b.shard[0].content_fingerprint);
  EXPECT_EQ(part0.shard[1].content_fingerprint,
            part0b.shard[1].content_fingerprint);

  // Add a shard-0 record: interned ids renumber globally, but shard 1's
  // slice is untouched content — its fingerprint must survive while
  // shard 0's moves. This is the property the cache validation vectors
  // stand on.
  auto grown = rig.records;
  grown.push_back({9, QueryOnShard(rig.router, 0, "alphadelta"),
                   "ua9.com", 500});
  auto next = BuildIndexSnapshot(grown, config, 1);
  ASSERT_TRUE(next.ok());
  const ShardPartition part1 = BuildShardPartition(*(*next)->mb, options);
  EXPECT_NE(part0.shard[0].content_fingerprint,
            part1.shard[0].content_fingerprint);
  EXPECT_EQ(part0.shard[1].content_fingerprint,
            part1.shard[1].content_fingerprint);
}

TEST_F(ShardingTest, EdgeCountChangeThroughSharedObjectMovesAdjacentShards) {
  // Regression (stale-cache hazard): Step() reads the *full* object->query
  // row — values and RowSum — of every object adjacent to a frontier row.
  // A change to an edge count c_zu on a query owned by shard 1 therefore
  // changes the contributions flowing through the shared object into
  // shard 0's rows, and shard 0's fingerprint must move even though no
  // shard-0 row was edited; otherwise shard 0's generation would survive
  // the rebuild and the cache's validation vector would pass on entries
  // whose served content the delta changed.
  ShardRouter router{2};
  const std::string a = QueryOnShard(router, 0, "alphaq");
  const std::string b = QueryOnShard(router, 1, "betaq");
  std::vector<QueryLogRecord> records = {
      {1, a, "shared.com", 100},
      {2, b, "shared.com", 100},
  };
  const auto config = ClusterConfig();
  ShardPartitionOptions options;
  options.shards = 2;
  options.hot_row_min_degree = 0;

  auto base = BuildIndexSnapshot(records, config, 0);
  ASSERT_TRUE(base.ok());
  const ShardPartition part0 = BuildShardPartition(*(*base)->mb, options);

  // A duplicate of b's click: no new query, URL, term or user — the only
  // content delta is the edge count c_{b,shared.com} (plus b's session
  // row), exactly the under-captured dependency.
  auto grown = records;
  grown.push_back({2, b, "shared.com", 130});
  auto next = BuildIndexSnapshot(grown, config, 1);
  ASSERT_TRUE(next.ok());
  const ShardPartition part1 = BuildShardPartition(*(*next)->mb, options);

  EXPECT_NE(part0.shard[1].content_fingerprint,
            part1.shard[1].content_fingerprint);
  // The crux: a's walk reads shared.com's whole o2q row, so shard 0's
  // served content changed too.
  EXPECT_NE(part0.shard[0].content_fingerprint,
            part1.shard[0].content_fingerprint);
}

// ------------------------------------ the differential property ----

void RunInvarianceProperty(bool personalize) {
  const auto records = ShardLog();
  const auto config = ShardConfig(personalize);
  auto unsharded = PqsdaEngine::Build(records, config);
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
  const auto probes = ShardProbes(records);
  const auto expected = ServeProbes(**unsharded, probes);

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    auto sharded = ShardedEngine::Build(records, config, ShardOptions(shards));
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    const std::string label = std::string("shards=") +
                              std::to_string(shards) +
                              (personalize ? " +upm" : "");
    ExpectIdenticalLists(expected, ServeProbes(**sharded, probes), label);
  }
}

TEST_F(ShardingTest, MatchesUnshardedAcrossShardCounts) {
  RunInvarianceProperty(/*personalize=*/false);
}

TEST_F(ShardingTest, MatchesUnshardedWithPersonalization) {
  RunInvarianceProperty(/*personalize=*/true);
}

TEST_F(ShardingTest, ScatterGatherActuallyCrossesShards) {
  // Guard against the property passing vacuously: at 4 shards with strict
  // ownership, some probe must touch more than one shard, serve remote
  // fetches, and still merge fully (no partial flag anywhere).
  const auto records = ShardLog();
  auto options = ShardOptions(4);
  options.hot_row_min_degree = 0;
  auto sharded = ShardedEngine::Build(records, ShardConfig(false), options);
  ASSERT_TRUE(sharded.ok());
  size_t multi_shard_probes = 0;
  for (const auto& probe : ShardProbes(records)) {
    SuggestStats stats;
    auto result = (*sharded)->Suggest(probe, 10, &stats);
    if (!result.ok()) continue;
    EXPECT_FALSE(stats.partial_merge);
    ASSERT_EQ(stats.shard_rungs.size(), 4u);
    for (uint8_t rung : stats.shard_rungs) {
      EXPECT_TRUE(rung == SuggestStats::kShardFull ||
                  rung == SuggestStats::kShardUntouched);
    }
    if (stats.shards_touched > 1) ++multi_shard_probes;
  }
  EXPECT_GT(multi_shard_probes, 0u);
}

TEST_F(ShardingTest, MatchesUnshardedFromConcurrentThreads) {
  const auto records = ShardLog();
  const auto config = ShardConfig(false);
  auto unsharded = PqsdaEngine::Build(records, config);
  ASSERT_TRUE(unsharded.ok());
  const auto probes = ShardProbes(records);
  const auto expected = ServeProbes(**unsharded, probes);

  auto sharded = ShardedEngine::Build(records, config, ShardOptions(4));
  ASSERT_TRUE(sharded.ok());

  // Concurrent callers (the TSAN suite re-runs this): every thread must see
  // the exact expected lists, and the lane-routed batch path must agree.
  std::vector<std::vector<std::vector<Suggestion>>> served(4);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < served.size(); ++t) {
    threads.emplace_back([&, t] { served[t] = ServeProbes(**sharded, probes); });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < served.size(); ++t) {
    ExpectIdenticalLists(expected, served[t],
                         "thread " + std::to_string(t));
  }

  auto batch = (*sharded)->SuggestBatch(probes, 10);
  std::vector<std::vector<Suggestion>> batch_lists;
  for (auto& result : batch) {
    if (result.ok()) {
      batch_lists.push_back(std::move(result).value());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kNotFound)
          << result.status().ToString();
      batch_lists.emplace_back();
    }
  }
  ExpectIdenticalLists(expected, batch_lists, "lane-routed batch");
}

// --------------------------------------- merge-correctness units ----

struct TestBuildRig {
  std::shared_ptr<const IndexSnapshot> snap;
  ShardedBuild build;
};

TestBuildRig MakeTestBuild(const std::vector<QueryLogRecord>& records,
                           const PqsdaEngineConfig& config, size_t shards,
                           size_t hot_row_min_degree) {
  TestBuildRig rig;
  auto snap = BuildIndexSnapshot(records, config, 0);
  EXPECT_TRUE(snap.ok());
  rig.snap = std::move(snap).value();
  rig.build.base = rig.snap;
  ShardPartitionOptions options;
  options.shards = shards;
  options.hot_row_min_degree = hot_row_min_degree;
  rig.build.partition = BuildShardPartition(*rig.snap->mb, options);
  rig.build.shard_generation.assign(shards, 0);
  return rig;
}

ShardServingContext MakeContext(const ShardedBuild& build, size_t primary,
                                std::function<uint8_t(size_t)> classify) {
  ShardServingContext ctx;
  ctx.build = &build;
  ctx.router.shards = build.partition.shards;
  ctx.primary = primary;
  ctx.classify = std::move(classify);
  ctx.rung.assign(build.partition.shards, SuggestStats::kShardUntouched);
  ctx.rung[primary] = SuggestStats::kShardFull;
  ctx.shard_fetches.assign(build.partition.shards, 0);
  return ctx;
}

void ExpectSameCsr(const CsrMatrix& a, const CsrMatrix& b,
                   const std::string& label) {
  ASSERT_EQ(a.rows(), b.rows()) << label;
  for (size_t r = 0; r < a.rows(); ++r) {
    auto ai = a.RowIndices(r);
    auto bi = b.RowIndices(r);
    ASSERT_EQ(std::vector<uint32_t>(ai.begin(), ai.end()),
              std::vector<uint32_t>(bi.begin(), bi.end()))
        << label << " row " << r;
    auto av = a.RowValues(r);
    auto bv = b.RowValues(r);
    ASSERT_EQ(av.size(), bv.size()) << label << " row " << r;
    for (size_t k = 0; k < av.size(); ++k) {
      EXPECT_EQ(av[k], bv[k]) << label << " row " << r << " nz " << k;
    }
  }
}

// The compact representation, compared bitwise: member queries in admission
// order (the tie-sensitive part — equal-mass candidates are ordered purely
// by accumulation order), then every derived matrix.
void ExpectSameRepresentation(const CompactRepresentation& ref,
                              const CompactRepresentation& got,
                              const std::string& label) {
  ASSERT_EQ(ref.queries, got.queries) << label;
  for (BipartiteKind kind :
       {BipartiteKind::kUrl, BipartiteKind::kSession, BipartiteKind::kTerm}) {
    const auto k = static_cast<size_t>(kind);
    ExpectSameCsr(ref.w[k], got.w[k], label + " W[" + std::to_string(k) + "]");
    ExpectSameCsr(ref.affinity[k], got.affinity[k],
                  label + " A[" + std::to_string(k) + "]");
    ExpectSameCsr(ref.sym_norm[k], got.sym_norm[k],
                  label + " S[" + std::to_string(k) + "]");
    ExpectSameCsr(ref.row_norm[k], got.row_norm[k],
                  label + " P[" + std::to_string(k) + "]");
  }
}

TEST_F(ShardingTest, GatherMatchesScalarReferenceForEveryPrimary) {
  // Every choice of primary shard re-draws the local/remote boundary: rows
  // served locally for one primary are duplicated-across-shards fetches for
  // another, and shards owning nothing on the frontier contribute empty
  // pools. All of them must induce the bit-identical representation.
  const auto records = ShardLog();
  auto rig = MakeTestBuild(records, ShardConfig(false), 4,
                           /*hot_row_min_degree=*/0);
  const MultiBipartite& mb = *rig.snap->mb;
  CompactBuilderOptions options;
  options.target_size = 60;

  CompactBuilder local(mb);
  const StringId seed = mb.QueryId(records.front().query);
  ASSERT_NE(seed, kInvalidStringId);
  auto ref = local.Build(seed, {}, options);
  ASSERT_TRUE(ref.ok());

  auto always_full = [](size_t) -> uint8_t { return SuggestStats::kShardFull; };
  for (size_t primary = 0; primary < 4; ++primary) {
    ShardServingContext ctx = MakeContext(rig.build, primary, always_full);
    ShardedWalkBackend backend(&ctx, {});
    CompactBuilder sharded(mb, &backend);
    auto got = sharded.Build(seed, {}, options);
    ASSERT_TRUE(got.ok());
    ExpectSameRepresentation(*ref, *got,
                             "primary=" + std::to_string(primary));
    EXPECT_FALSE(ctx.partial);
  }
}

TEST_F(ShardingTest, TiedMassAtTheMergeBoundaryKeepsAccumulationOrder) {
  // "left" and "right" are exactly symmetric around the seed (same session
  // and click structure), so their expansion mass is bit-identical — the
  // admission order between them is decided purely by accumulation order.
  // They are crafted onto *different* shards and the primary owns neither:
  // both arrive as gathered contributions, and must still admit in the
  // scalar reference's order.
  ShardRouter router{2};
  const std::string root = "rootquery0";
  const std::string left = QueryOnShard(router, 0, "leftq");
  const std::string right = QueryOnShard(router, 1, "rightq");
  std::vector<QueryLogRecord> records = {
      {1, root, "ushare.com", 100},  {1, left, "ushare.com", 150},
      {2, root, "ushare.com", 100},  {2, right, "ushare.com", 150},
  };
  auto rig = MakeTestBuild(records, ClusterConfig(), 2,
                           /*hot_row_min_degree=*/0);
  const MultiBipartite& mb = *rig.snap->mb;
  const StringId seed = mb.QueryId(root);
  ASSERT_NE(seed, kInvalidStringId);

  CompactBuilderOptions options;
  CompactBuilder local(mb);
  auto ref = local.Build(seed, {}, options);
  ASSERT_TRUE(ref.ok());
  ASSERT_GE(ref->queries.size(), 3u);  // root + both tied candidates

  const size_t primary = rig.build.partition.query_owner[seed];
  auto always_full = [](size_t) -> uint8_t { return SuggestStats::kShardFull; };
  ShardServingContext ctx = MakeContext(rig.build, primary, always_full);
  ShardedWalkBackend backend(&ctx, {});
  CompactBuilder sharded(mb, &backend);
  auto got = sharded.Build(seed, {}, options);
  ASSERT_TRUE(got.ok());
  ExpectSameRepresentation(*ref, *got, "tied merge boundary");
  // The tie really crossed shards: the non-primary shard served fetches.
  EXPECT_GT(ctx.shard_fetches[1 - primary], 0u);
}

// Scalar reference for the degraded case: a backend that computes
// everything locally, in canonical order, but censors the rows a chosen
// shard owns — exactly what the real coordinator must reduce to when that
// shard refuses service.
class CensoringBackend final : public CompactWalkBackend {
 public:
  CensoringBackend(const MultiBipartite& mb, const ShardPartition& part,
                   size_t primary, size_t censored)
      : mb_(&mb), part_(&part), primary_(primary), censored_(censored) {}

  bool Served(StringId q) const {
    return part_->HasRow(primary_, q) ||
           part_->query_owner[q] != censored_;
  }

  Status Step(BipartiteKind kind, const FlatMap<StringId, double>& mass,
              double scale, FlatMap<StringId, double>& out) const override {
    const auto& g = mb_->graph(kind);
    const CsrMatrix& q2o = g.query_to_object();
    const CsrMatrix& o2q = g.object_to_query();
    for (const auto& [q, p] : mass) {
      if (!Served(q)) continue;
      double row_sum = q2o.RowSum(q);
      if (row_sum <= 0.0) continue;
      auto obj_idx = q2o.RowIndices(q);
      auto obj_val = q2o.RowValues(q);
      for (size_t k = 0; k < obj_idx.size(); ++k) {
        double p_obj = obj_val[k] / row_sum;
        uint32_t obj = obj_idx[k];
        double obj_sum = o2q.RowSum(obj);
        if (obj_sum <= 0.0) continue;
        auto q_idx = o2q.RowIndices(obj);
        auto q_val = o2q.RowValues(obj);
        for (size_t k2 = 0; k2 < q_idx.size(); ++k2) {
          out[q_idx[k2]] += scale * p * p_obj * q_val[k2] / obj_sum;
        }
      }
    }
    return Status::OK();
  }

  Status QueryRow(BipartiteKind kind, StringId query,
                  std::span<const uint32_t>& indices,
                  std::span<const double>& values) const override {
    if (!Served(query)) {
      indices = {};
      values = {};
      return Status::OK();
    }
    const CsrMatrix& q2o = mb_->graph(kind).query_to_object();
    indices = q2o.RowIndices(query);
    values = q2o.RowValues(query);
    return Status::OK();
  }

 private:
  const MultiBipartite* mb_;
  const ShardPartition* part_;
  size_t primary_;
  size_t censored_;
};

TEST_F(ShardingTest, DegradedShardDropsExactlyItsColdRows) {
  const auto records = ShardLog();
  auto rig = MakeTestBuild(records, ShardConfig(false), 4,
                           /*hot_row_min_degree=*/0);
  const MultiBipartite& mb = *rig.snap->mb;
  CompactBuilderOptions options;
  options.target_size = 60;
  const StringId seed = mb.QueryId(records.front().query);
  ASSERT_NE(seed, kInvalidStringId);

  const size_t primary = rig.build.partition.query_owner[seed];
  const size_t censored = (primary + 1) % 4;

  CensoringBackend censor(mb, rig.build.partition, primary, censored);
  CompactBuilder reference(mb, &censor);
  auto ref = reference.Build(seed, {}, options);
  ASSERT_TRUE(ref.ok());

  ShardServingContext ctx = MakeContext(
      rig.build, primary, [censored](size_t s) -> uint8_t {
        return s == censored ? SuggestStats::kShardDegraded
                             : SuggestStats::kShardFull;
      });
  ShardedWalkBackend backend(&ctx, {});
  CompactBuilder sharded(mb, &backend);
  auto got = sharded.Build(seed, {}, options);
  ASSERT_TRUE(got.ok());
  ExpectSameRepresentation(*ref, *got, "censored shard");
  EXPECT_TRUE(ctx.partial);
  EXPECT_EQ(ctx.rung[censored], SuggestStats::kShardDegraded);
  EXPECT_EQ(ctx.shard_fetches[censored], 0u);  // nothing served from it
}

// ----------------------------------------------- rebuild churn ----

// Splits `tail` into chunks at positions drawn from `rng`.
std::vector<std::vector<QueryLogRecord>> RandomChunks(
    std::vector<QueryLogRecord> tail, std::mt19937& rng) {
  std::vector<std::vector<QueryLogRecord>> chunks;
  size_t pos = 0;
  while (pos < tail.size()) {
    std::uniform_int_distribution<size_t> dist(1, tail.size() - pos);
    const size_t n = dist(rng);
    chunks.emplace_back(tail.begin() + pos, tail.begin() + pos + n);
    pos += n;
  }
  return chunks;
}

TEST_F(ShardingTest, ChunkedIngestKeepsEquivalenceWithBatchBuild) {
  const auto all_records = ShardLog();
  const auto config = ShardConfig(false);
  auto batch = PqsdaEngine::Build(all_records, config);
  ASSERT_TRUE(batch.ok());
  const auto probes = ShardProbes(all_records);
  const auto expected = ServeProbes(**batch, probes);

  const size_t prefix = all_records.size() / 2;
  auto sharded = ShardedEngine::Build(
      std::vector<QueryLogRecord>(all_records.begin(),
                                  all_records.begin() + prefix),
      config, ShardOptions(4));
  ASSERT_TRUE(sharded.ok());

  std::mt19937 rng(404);
  for (auto& chunk : RandomChunks(
           std::vector<QueryLogRecord>(all_records.begin() + prefix,
                                       all_records.end()),
           rng)) {
    for (auto& record : chunk) {
      ASSERT_TRUE((*sharded)->Ingest(std::move(record)).ok());
    }
    (*sharded)->WaitForRebuilds();  // drain threshold-scheduled passes
    ASSERT_TRUE((*sharded)->RebuildNow().ok());
    EXPECT_EQ((*sharded)->delta_depth(), 0u);
  }
  ExpectIdenticalLists(expected, ServeProbes(**sharded, probes),
                       "chunked ingest, shards=4");
}

TEST_F(ShardingTest, HoldbackPinsThePreviousBuildThenSyncCatchesUp) {
  const auto all_records = ShardLog();
  const auto config = ShardConfig(false);
  const size_t prefix = all_records.size() - 80;
  const std::vector<QueryLogRecord> base(all_records.begin(),
                                         all_records.begin() + prefix);
  const auto probes = ShardProbes(base);

  auto old_ref = PqsdaEngine::Build(base, config);
  ASSERT_TRUE(old_ref.ok());
  const auto expected_old = ServeProbes(**old_ref, probes);
  auto new_ref = PqsdaEngine::Build(all_records, config);
  ASSERT_TRUE(new_ref.ok());
  const auto expected_new = ServeProbes(**new_ref, probes);

  auto sharded = ShardedEngine::Build(base, config, ShardOptions(4));
  ASSERT_TRUE(sharded.ok());

  // One shard stalls mid-swap: every publication keeps slot 1 on its old
  // build. The consistent cut must pin requests to the *whole* previous
  // build — bitwise the pre-churn engine, never a mixed-generation view.
  FaultInjector::Default().SetValue(faults::kShardSwapHoldback, 1);
  for (size_t i = prefix; i < all_records.size(); ++i) {
    ASSERT_TRUE((*sharded)->Ingest(all_records[i]).ok());
  }
  (*sharded)->WaitForRebuilds();
  ASSERT_TRUE((*sharded)->RebuildNow().ok());
  EXPECT_GT(FaultInjector::Default().Hits(faults::kShardSwap), 0u);
  ExpectIdenticalLists(expected_old, ServeProbes(**sharded, probes),
                       "held-back consistent cut");

  // The swap completes: requests move to the new build, and serve exactly
  // what a batch build over the full log serves.
  FaultInjector::Default().Reset();
  (*sharded)->SyncShards();
  ExpectIdenticalLists(expected_new, ServeProbes(**sharded, probes),
                       "after SyncShards");
}

TEST_F(ShardingTest, ServingDuringChurnStaysOnOnePublishedGeneration) {
  // Readers hammer one probe while the writer publishes generations; every
  // response must fingerprint-match exactly one precomputed generation
  // (torn merges match nothing; stale memory is the sanitizer suites' job —
  // both re-run this test).
  const auto all_records = ShardLog();
  auto config = ShardConfig(false);
  config.ingest.rebuild_min_records = 100000;  // only explicit RebuildNow
  constexpr size_t kGenerations = 3;
  const size_t prefix = all_records.size() - 120;
  const size_t chunk_size = 120 / kGenerations;

  const auto probe = ShardProbes(all_records)[0];
  std::vector<uint64_t> expected_fp;
  for (size_t g = 0; g <= kGenerations; ++g) {
    auto engine = PqsdaEngine::Build(
        std::vector<QueryLogRecord>(
            all_records.begin(),
            all_records.begin() + prefix + g * chunk_size),
        config);
    ASSERT_TRUE(engine.ok());
    auto list = (*engine)->Suggest(probe, 10);
    ASSERT_TRUE(list.ok());
    expected_fp.push_back(FingerprintOfList(*list));
  }

  auto sharded = ShardedEngine::Build(
      std::vector<QueryLogRecord>(all_records.begin(),
                                  all_records.begin() + prefix),
      config, ShardOptions(2));
  ASSERT_TRUE(sharded.ok());

  std::atomic<bool> done{false};
  std::atomic<size_t> mismatches{0};
  auto reader = [&] {
    while (!done.load(std::memory_order_acquire)) {
      auto list = (*sharded)->Suggest(probe, 10);
      if (!list.ok()) {
        mismatches.fetch_add(1);
        continue;
      }
      const uint64_t fp = FingerprintOfList(*list);
      if (std::find(expected_fp.begin(), expected_fp.end(), fp) ==
          expected_fp.end()) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) readers.emplace_back(reader);

  for (size_t g = 0; g < kGenerations; ++g) {
    for (size_t i = prefix + g * chunk_size;
         i < prefix + (g + 1) * chunk_size; ++i) {
      ASSERT_TRUE((*sharded)->Ingest(all_records[i]).ok());
    }
    ASSERT_TRUE((*sharded)->RebuildNow().ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  auto final_list = (*sharded)->Suggest(probe, 10);
  ASSERT_TRUE(final_list.ok());
  EXPECT_EQ(FingerprintOfList(*final_list), expected_fp[kGenerations]);
}

// ------------------------------------------- cache validation ----

TEST_F(ShardingTest, SingleShardSwapInvalidatesOnlyEntriesTouchingIt) {
  ClusterRig rig = MakeClusterRig();
  auto config = ClusterConfig();
  config.cache_capacity = 32;
  ShardedEngineOptions options;
  options.shards = 2;
  options.hot_row_min_degree = 0;  // strict ownership: clusters stay apart
  auto engine = ShardedEngine::Build(rig.records, config, options);
  ASSERT_TRUE(engine.ok());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& hits = reg.GetCounter("pqsda.cache.hits_total");
  obs::Counter& misses = reg.GetCounter("pqsda.cache.misses_total");
  obs::Counter& stale =
      reg.GetCounter("pqsda.cache.stale_invalidations_total");

  SuggestionRequest probe_a;
  probe_a.query = rig.a[0];
  probe_a.timestamp = 1000;
  SuggestionRequest probe_b;
  probe_b.query = rig.b[0];
  probe_b.timestamp = 1000;

  // Each cluster's expansion stays on its own shard (the precondition the
  // crafted corpus exists for).
  SuggestStats stats;
  ASSERT_TRUE((*engine)->Suggest(probe_a, 5, &stats).ok());
  ASSERT_EQ(stats.shards_touched, 1u);
  ASSERT_TRUE((*engine)->Suggest(probe_b, 5, &stats).ok());
  ASSERT_EQ(stats.shards_touched, 1u);

  const uint64_t hits0 = hits.Value();
  const uint64_t misses0 = misses.Value();
  const uint64_t stale0 = stale.Value();
  ASSERT_TRUE((*engine)->Suggest(probe_a, 5).ok());  // hit
  ASSERT_TRUE((*engine)->Suggest(probe_b, 5).ok());  // hit
  ASSERT_EQ(hits.Value(), hits0 + 2);

  // A shard-0-only delta: a fresh query crafted onto shard 0 (raw
  // weighting, so no global IQF coupling can reach shard 1's rows).
  ASSERT_TRUE((*engine)
                  ->Ingest({9, QueryOnShard(rig.router, 0, "alphadelta"),
                            "ua9.com", 5000})
                  .ok());
  ASSERT_TRUE((*engine)->RebuildNow().ok());

  // Shard 1's generation survived the swap: probe_b's entry is still
  // valid. Shard 0 moved: probe_a's entry is stale — detected at lookup,
  // erased, recomputed against the new build.
  ASSERT_TRUE((*engine)->Suggest(probe_b, 5).ok());
  EXPECT_EQ(hits.Value(), hits0 + 3);
  EXPECT_EQ(stale.Value(), stale0);

  const uint64_t misses_before_a = misses.Value();
  ASSERT_TRUE((*engine)->Suggest(probe_a, 5).ok());
  EXPECT_EQ(stale.Value(), stale0 + 1);
  EXPECT_EQ(misses.Value(), misses_before_a + 1);
  EXPECT_EQ(hits.Value(), hits0 + 3);  // no stale hit served

  // The recomputed entry caches under the new validation vector.
  ASSERT_TRUE((*engine)->Suggest(probe_a, 5).ok());
  EXPECT_EQ(hits.Value(), hits0 + 4);
  (void)misses0;
}

}  // namespace
}  // namespace pqsda
