// The live telemetry subsystem: sliding-window rates and histograms (with
// an injected fake clock, so epochs step deterministically), the metric
// kind-collision contract, Prometheus exposition edge cases, the embedded
// HTTP exporter, the sampled JSONL request log and its accounting contract,
// and an end-to-end acceptance test that scrapes /metrics, /statusz and
// /tracez concurrently with SuggestBatch storms. run_benches.sh re-runs
// this binary under ThreadSanitizer.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pqsda_engine.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/sliding_window.h"
#include "obs/telemetry.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PQSDA_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define PQSDA_TSAN 1
#endif

namespace pqsda::obs {
namespace {

constexpr int64_t kSecond = 1'000'000'000;

// Fake monotonic clock: tests advance it explicitly, so window epochs step
// deterministically instead of depending on wall time (important under
// TSAN, where sleeps are both slow and flaky).
struct FakeClock {
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);
  WindowOptions Options(int64_t epoch_ns = kSecond, size_t epochs = 8) const {
    WindowOptions o;
    o.epoch_ns = epoch_ns;
    o.epochs = epochs;
    o.clock = [now = now] { return now->load(std::memory_order_relaxed); };
    return o;
  }
  void Advance(int64_t ns) {
    now->fetch_add(ns, std::memory_order_relaxed);
  }
};

// ------------------------------------------------- WindowedRate ----

TEST(WindowedRateTest, SumsTrailingWindow) {
  FakeClock clock;
  WindowedRate rate(clock.Options());
  rate.Add(5);
  clock.Advance(kSecond);  // epoch 1
  rate.Add(3);
  clock.Advance(kSecond);  // epoch 2
  rate.Add(2);

  EXPECT_EQ(rate.SumOver(kSecond), 2u);       // current epoch only
  EXPECT_EQ(rate.SumOver(2 * kSecond), 5u);   // epochs 1..2
  EXPECT_EQ(rate.SumOver(3 * kSecond), 10u);  // all three
  EXPECT_EQ(rate.SumOver(60 * kSecond), 10u);  // clamped to ring coverage
  EXPECT_DOUBLE_EQ(rate.RatePerSec(2 * kSecond), 2.5);
}

TEST(WindowedRateTest, OldEpochsAgeOut) {
  FakeClock clock;
  WindowedRate rate(clock.Options(kSecond, /*epochs=*/4));
  rate.Add(100);
  clock.Advance(10 * kSecond);  // far beyond the 4-epoch ring
  rate.Add(1);
  EXPECT_EQ(rate.SumOver(4 * kSecond), 1u);
  // The storm 10s ago is gone from every window the ring can answer.
  EXPECT_EQ(rate.SumOver(60 * kSecond), 1u);
}

TEST(WindowedRateTest, RingSlotReuseResetsCount) {
  FakeClock clock;
  WindowedRate rate(clock.Options(kSecond, /*epochs=*/2));
  rate.Add(7);                 // epoch 0, slot 0
  clock.Advance(2 * kSecond);  // epoch 2 maps onto slot 0 again
  rate.Add(1);
  EXPECT_EQ(rate.SumOver(kSecond), 1u);  // not 8: the slot was retired
}

TEST(WindowedRateTest, ConcurrentAddersAndReaders) {
  FakeClock clock;
  WindowedRate rate(clock.Options(kSecond, /*epochs=*/16));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rate, &clock] {
      for (int i = 0; i < kPerThread; ++i) {
        rate.Add();
        if (i % 256 == 0) clock.Advance(kSecond / 4);
      }
    });
  }
  std::thread reader([&rate] {
    for (int i = 0; i < 500; ++i) (void)rate.SumOver(4 * kSecond);
  });
  for (auto& t : threads) t.join();
  reader.join();
  // The clock advanced at most kThreads*8 quarter-epochs < the 16-epoch
  // ring's coverage only if... it didn't; some events may have aged out of
  // small windows, but every event is in *some* recent epoch and none were
  // double-counted: the full-coverage sum never exceeds the total added.
  EXPECT_LE(rate.SumOver(16 * kSecond),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(rate.SumOver(16 * kSecond), 0u);
}

// --------------------------------------- SlidingWindowHistogram ----

TEST(SlidingWindowHistogramTest, WindowedPercentiles) {
  FakeClock clock;
  std::vector<double> bounds;
  for (double b = 10.0; b <= 1000.0; b += 10.0) bounds.push_back(b);
  SlidingWindowHistogram hist(clock.Options(), &bounds);

  // Epoch 0: a fast distribution. Epoch 1: a slow one.
  for (int i = 1; i <= 100; ++i) hist.Record(i);  // 1..100us
  clock.Advance(kSecond);
  for (int i = 1; i <= 100; ++i) hist.Record(i * 10);  // 10..1000us

  WindowSnapshot last = hist.SnapshotOver(kSecond);
  EXPECT_EQ(last.count, 100u);
  EXPECT_NEAR(last.p50, 500.0, 20.0);

  WindowSnapshot both = hist.SnapshotOver(2 * kSecond);
  EXPECT_EQ(both.count, 200u);
  EXPECT_DOUBLE_EQ(both.sum, 5050.0 + 50500.0);
  // Merged distribution: half the mass is below ~100, so p50 drops.
  EXPECT_LT(both.p50, last.p50);
  EXPECT_GT(both.p99, 900.0);
}

TEST(SlidingWindowHistogramTest, EmptyWindowIsZero) {
  FakeClock clock;
  SlidingWindowHistogram hist(clock.Options());
  hist.Record(42.0);
  clock.Advance(10 * kSecond);  // beyond the 8-epoch ring
  WindowSnapshot snap = hist.SnapshotOver(2 * kSecond);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
}

TEST(SlidingWindowHistogramTest, ConcurrentRecordAndSnapshot) {
  FakeClock clock;
  SlidingWindowHistogram hist(clock.Options(kSecond, /*epochs=*/16));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist, &clock, t] {
      for (int i = 0; i < 2000; ++i) {
        hist.Record(static_cast<double>((t + 1) * i % 997));
        if (i % 512 == 0) clock.Advance(kSecond / 8);
      }
    });
  }
  std::thread reader([&hist] {
    for (int i = 0; i < 300; ++i) (void)hist.SnapshotOver(4 * kSecond);
  });
  for (auto& t : threads) t.join();
  reader.join();
  EXPECT_LE(hist.SnapshotOver(16 * kSecond).count, 8000u);
}

// ------------------------------------- metric kind collisions ----

TEST(MetricsKindCollisionTest, TryGettersReturnFailedPrecondition) {
  MetricsRegistry reg;
  reg.GetCounter("pqsda.test.kind");
  auto gauge = reg.TryGetGauge("pqsda.test.kind");
  ASSERT_FALSE(gauge.ok());
  EXPECT_EQ(gauge.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(gauge.status().ToString().find("already registered"),
            std::string::npos);
  auto hist = reg.TryGetHistogram("pqsda.test.kind");
  ASSERT_FALSE(hist.ok());
  EXPECT_EQ(hist.status().code(), StatusCode::kFailedPrecondition);
  // Same kind is fine and returns the same object.
  auto counter = reg.TryGetCounter("pqsda.test.kind");
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter, &reg.GetCounter("pqsda.test.kind"));
}

#if !defined(PQSDA_TSAN)
TEST(MetricsKindCollisionDeathTest, GetAbortsLoudlyOnKindMismatch) {
  MetricsRegistry reg;
  reg.GetGauge("pqsda.test.collide");
  EXPECT_DEATH(reg.GetCounter("pqsda.test.collide"), "already registered");
}
#endif

TEST(MetricsRegistryTest, LookupSurvivesManyMetrics) {
  // The name->index map must keep returning the same objects as the
  // registry grows (no invalidation when entries_ reallocates).
  MetricsRegistry reg;
  Counter& first = reg.GetCounter("pqsda.test.first");
  for (int i = 0; i < 200; ++i) {
    reg.GetCounter("pqsda.test.bulk." + std::to_string(i));
  }
  EXPECT_EQ(&first, &reg.GetCounter("pqsda.test.first"));
  first.Increment(3);
  EXPECT_EQ(reg.GetCounter("pqsda.test.first").Value(), 3u);
}

// ------------------------------------ Prometheus edge cases ----

// Pulls every "name_bucket{le=...} value" line of `metric` out of an
// exposition blob, in order, returning the cumulative counts.
std::vector<double> BucketValues(const std::string& prom,
                                 const std::string& metric) {
  std::vector<double> values;
  const std::string needle = metric + "_bucket{le=\"";
  size_t pos = 0;
  while ((pos = prom.find(needle, pos)) != std::string::npos) {
    size_t space = prom.find(' ', pos);
    values.push_back(std::strtod(prom.c_str() + space + 1, nullptr));
    pos = space;
  }
  return values;
}

double ScrapeValue(const std::string& prom, const std::string& series) {
  size_t pos = prom.find("\n" + series + " ");
  if (pos == std::string::npos) {
    if (prom.rfind(series + " ", 0) == 0) pos = 0;
    else return -1.0;
  } else {
    pos += 1;
  }
  return std::strtod(prom.c_str() + pos + series.size() + 1, nullptr);
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeAndMonotone) {
  MetricsRegistry reg;
  std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  Histogram& h = reg.GetHistogram("pqsda.test.histo", &bounds);
  for (double v : {0.5, 1.5, 3.0, 3.5, 7.0, 100.0, 200.0}) h.Observe(v);

  std::string prom = reg.ExportPrometheus();
  std::vector<double> buckets = BucketValues(prom, "pqsda_test_histo");
  ASSERT_EQ(buckets.size(), bounds.size() + 1);  // finite bounds + +Inf
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i], buckets[i - 1]) << "bucket " << i;
  }
  // The +Inf bucket equals _count — required by the exposition format.
  EXPECT_DOUBLE_EQ(buckets.back(),
                   ScrapeValue(prom, "pqsda_test_histo_count"));
  EXPECT_DOUBLE_EQ(buckets.back(), 7.0);
  EXPECT_NE(prom.find("# TYPE pqsda_test_histo histogram"),
            std::string::npos);
}

TEST(PrometheusExportTest, NameSanitizationRoundTripsThroughScrape) {
  // Dots and dashes are illegal in Prometheus metric names; the export
  // must rewrite them to '_' and a scraper must find the value under the
  // sanitized name.
  MetricsRegistry reg;
  reg.GetCounter("pqsda.sub-system.v2.requests-total").Increment(42);
  std::string prom = reg.ExportPrometheus();
  EXPECT_EQ(prom.find("pqsda.sub-system"), std::string::npos);
  EXPECT_DOUBLE_EQ(
      ScrapeValue(prom, "pqsda_sub_system_v2_requests_total"), 42.0);
  EXPECT_NE(prom.find("# TYPE pqsda_sub_system_v2_requests_total counter"),
            std::string::npos);
}

// ------------------------------------------- HttpExporter ----

TEST(HttpExporterTest, ServesRoutesOnEphemeralPort) {
  HttpExporter exporter;
  exporter.Route("/healthz", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  exporter.Route("/echo", [](const HttpRequest& req) {
    HttpResponse r;
    r.body = req.method + " " + req.path + "?" + req.query;
    return r;
  });
  ASSERT_TRUE(exporter.Start(0).ok());
  ASSERT_GT(exporter.port(), 0);

  int status = 0;
  auto health = HttpGet(exporter.port(), "/healthz", &status);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*health, "ok\n");

  auto echo = HttpGet(exporter.port(), "/echo?window=10s", &status);
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(*echo, "GET /echo?window=10s");

  auto missing = HttpGet(exporter.port(), "/nope", &status);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(status, 404);

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  // Stop is idempotent and the port stops answering.
  exporter.Stop();
  EXPECT_FALSE(HttpGet(exporter.port(), "/healthz").ok());
}

TEST(HttpExporterTest, ServesConcurrentScrapers) {
  HttpExporter exporter;
  std::atomic<int> served{0};
  exporter.Route("/counter", [&served](const HttpRequest&) {
    HttpResponse r;
    r.body = std::to_string(served.fetch_add(1));
    return r;
  });
  ASSERT_TRUE(exporter.Start(0).ok());
  std::vector<std::thread> scrapers;
  std::atomic<int> successes{0};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&exporter, &successes] {
      for (int i = 0; i < 8; ++i) {
        if (HttpGet(exporter.port(), "/counter").ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(successes.load(), 32);
  EXPECT_EQ(served.load(), 32);
  exporter.Stop();
}

// --------------------------------------------- RequestLog ----

std::string TempLogPath(const std::string& name) {
  return testing::TempDir() + "pqsda_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

size_t CountLines(const std::string& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  return lines;
}

RequestLogEntry MakeEntry(uint64_t id, int64_t total_us) {
  RequestLogEntry e;
  e.request_id = id;
  e.user = 7;
  e.query = "sun";
  e.k = 10;
  e.total_us = total_us;
  return e;
}

TEST(RequestLogTest, HeadSamplingAcceptsEveryNth) {
  const std::string path = TempLogPath("sampling");
  RequestLogOptions options;
  options.path = path;
  options.sample_every = 4;
  options.slow_us = 1'000'000'000;  // nothing is "slow"
  auto log = RequestLog::Open(options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 10; ++i) {
    (*log)->Log(MakeEntry(i, /*total_us=*/50));
  }
  (*log)->Flush();
  EXPECT_EQ((*log)->seen(), 10u);
  EXPECT_EQ((*log)->accepted(), 3u);  // arrivals 0, 4, 8
  EXPECT_EQ((*log)->written() + (*log)->dropped(), (*log)->accepted());
  EXPECT_EQ(CountLines(path), (*log)->written());
  log->reset();
  std::remove(path.c_str());
}

TEST(RequestLogTest, SlowRequestsAlwaysLogged) {
  const std::string path = TempLogPath("slow");
  RequestLogOptions options;
  options.path = path;
  options.sample_every = 0;  // sampling off: only the slow path logs
  options.slow_us = 1000;
  auto log = RequestLog::Open(options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 20; ++i) {
    (*log)->Log(MakeEntry(i, i % 2 == 0 ? 5000 : 10));  // half slow
  }
  (*log)->Flush();
  EXPECT_EQ((*log)->seen(), 20u);
  EXPECT_EQ((*log)->accepted(), 10u);
  EXPECT_EQ((*log)->written(), 10u);
  EXPECT_EQ((*log)->dropped(), 0u);
  EXPECT_EQ(CountLines(path), 10u);
  log->reset();
  std::remove(path.c_str());
}

TEST(RequestLogTest, FullQueueDropsWholeEntriesAndCountsThem) {
  const std::string path = TempLogPath("drops");
  RequestLogOptions options;
  options.path = path;
  options.sample_every = 1;
  options.queue_capacity = 0;  // always full: every accepted entry drops
  auto log = RequestLog::Open(options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 50; ++i) (*log)->Log(MakeEntry(i, 10));
  (*log)->Flush();
  EXPECT_EQ((*log)->accepted(), 50u);
  EXPECT_EQ((*log)->dropped(), 50u);
  EXPECT_EQ((*log)->written(), 0u);
  EXPECT_EQ(CountLines(path), 0u);
  log->reset();
  std::remove(path.c_str());
}

TEST(RequestLogTest, ToJsonSchema) {
  RequestLogEntry entry;
  entry.request_id = 17;
  entry.user = 3;
  entry.query = "solar \"flare\"\n";
  entry.k = 5;
  entry.timestamp = 777;
  entry.context = {{"prior query", 700}};
  entry.generation = 4;
  entry.rung = 1;
  entry.fingerprint = 0x0123456789abcdefULL;
  entry.total_us = 1234;
  entry.cache_hit = true;
  entry.ok = true;
  entry.stage_us = {{"expansion", 400}, {"regularization_solve", 700}};
  entry.suggestions = {"solar energy", "solar system"};
  std::string json = RequestLog::ToJson(entry);
  EXPECT_EQ(json,
            "{\"request_id\":17,\"user\":3,"
            "\"query\":\"solar \\\"flare\\\"\\n\",\"k\":5,"
            "\"timestamp\":777,\"context\":[[\"prior query\",700]],"
            "\"generation\":4,\"rung\":1,"
            "\"total_us\":1234,\"cache_hit\":true,\"ok\":true,"
            "\"fingerprint\":\"0123456789abcdef\","
            "\"stage_us\":{\"expansion\":400,"
            "\"regularization_solve\":700},"
            "\"suggestions\":[\"solar energy\",\"solar system\"]}");

  RequestLogEntry failed;
  failed.request_id = 18;
  failed.query = "zzzz";
  failed.k = 5;
  failed.ok = false;
  failed.status = "NotFound: unknown query";
  std::string failed_json = RequestLog::ToJson(failed);
  EXPECT_NE(failed_json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(failed_json.find("\"status\":\"NotFound: unknown query\""),
            std::string::npos);
  EXPECT_EQ(failed_json.find("suggestions"), std::string::npos);
  // Failed requests carry no fingerprint — there is no list to reproduce.
  EXPECT_EQ(failed_json.find("fingerprint"), std::string::npos);
}

// --------------------------------- sliding-window edge cases ----

TEST(SlidingWindowEdgeTest, BackwardsClockWriteIsDroppedNotCorrupting) {
  FakeClock clock;
  WindowedRate rate(clock.Options(kSecond, /*epochs=*/4));
  clock.Advance(10 * kSecond);
  rate.Add(5);  // epoch 10, slot 2
  EXPECT_EQ(rate.SumOver(kSecond), 5u);

  // The clock steps backwards onto the same ring slot (epoch 6 also maps to
  // slot 2, which holds the newer epoch 10): the write is dropped rather
  // than corrupting the newer epoch, and reads at the rewound time see
  // nothing from the future.
  clock.Advance(-4 * kSecond);
  rate.Add(2);
  EXPECT_EQ(rate.SumOver(4 * kSecond), 0u);

  // Once the clock recovers, the original epoch's count is intact — the
  // backwards write neither lost it nor double-counted anything.
  clock.Advance(4 * kSecond);
  EXPECT_EQ(rate.SumOver(kSecond), 5u);
}

TEST(SlidingWindowEdgeTest, BackwardsClockHistogramRecordIsDropped) {
  FakeClock clock;
  SlidingWindowHistogram hist(clock.Options(kSecond, /*epochs=*/4));
  clock.Advance(10 * kSecond);
  hist.Record(100.0);
  clock.Advance(-4 * kSecond);  // same slot, older epoch: dropped
  hist.Record(999.0);
  clock.Advance(4 * kSecond);
  WindowSnapshot snap = hist.SnapshotOver(kSecond);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 100.0);
}

TEST(SlidingWindowEdgeTest, RecordsStraddlingAnEpochBoundary) {
  FakeClock clock;
  WindowedRate rate(clock.Options(kSecond, /*epochs=*/8));
  clock.Advance(kSecond - 1);  // last nanosecond of epoch 0
  rate.Add(1);
  clock.Advance(1);  // first nanosecond of epoch 1
  rate.Add(1);
  // One-epoch window: only the event on this side of the boundary.
  EXPECT_EQ(rate.SumOver(kSecond), 1u);
  EXPECT_EQ(rate.SumOver(2 * kSecond), 2u);

  SlidingWindowHistogram hist(clock.Options(kSecond, /*epochs=*/8));
  hist.Record(10.0);  // epoch 1 (clock is at exactly 1s)
  clock.Advance(kSecond);
  hist.Record(20.0);  // epoch 2
  EXPECT_EQ(hist.SnapshotOver(kSecond).count, 1u);
  EXPECT_DOUBLE_EQ(hist.SnapshotOver(2 * kSecond).sum, 30.0);
}

TEST(SlidingWindowEdgeTest, ZeroWidthWindowsAndDegenerateOptions) {
  FakeClock clock;
  WindowedRate rate(clock.Options());
  rate.Add(3);
  // A zero (or negative) window clamps to the current epoch.
  EXPECT_EQ(rate.SumOver(0), 3u);
  EXPECT_EQ(rate.SumOver(-5 * kSecond), 3u);
  EXPECT_DOUBLE_EQ(rate.RatePerSec(0), 0.0);

  SlidingWindowHistogram hist(clock.Options());
  hist.Record(42.0);
  EXPECT_EQ(hist.SnapshotOver(0).count, 1u);
  EXPECT_EQ(hist.CountAbove(0, 1.0), 1u);

  // Zero-width epochs and a zero-size ring are sanitized at construction
  // instead of dividing by zero on the first Add.
  WindowOptions degenerate;
  degenerate.epoch_ns = 0;
  degenerate.epochs = 0;
  degenerate.clock = [] { return int64_t{7}; };
  WindowedRate pinned(degenerate);
  pinned.Add(4);
  EXPECT_EQ(pinned.SumOver(kSecond), 4u);
  EXPECT_GE(pinned.options().epoch_ns, 1);
  EXPECT_GE(pinned.options().epochs, 1u);
}

TEST(SlidingWindowHistogramTest, CountAboveAtBucketResolution) {
  FakeClock clock;
  std::vector<double> bounds = {10.0, 20.0, 40.0};
  SlidingWindowHistogram hist(clock.Options(), &bounds);
  hist.Record(5.0);    // bucket (0, 10]
  hist.Record(15.0);   // bucket (10, 20]
  hist.Record(30.0);   // bucket (20, 40]
  hist.Record(100.0);  // overflow

  // Threshold on a bucket bound: exactly the strictly-above buckets count.
  EXPECT_EQ(hist.CountAbove(kSecond, 20.0), 2u);
  EXPECT_EQ(hist.CountAbove(kSecond, 10.0), 3u);
  // Mid-bucket threshold: the containing bucket contributes a linearly
  // interpolated share ((20-15)/10 = 0.5), rounded at the end.
  EXPECT_EQ(hist.CountAbove(kSecond, 15.0), 3u);  // 0.5 + 1 + 1 rounds to 3
  // Threshold below every bound counts everything; past the last bound only
  // the overflow bucket (whose observations are at least that bound).
  EXPECT_EQ(hist.CountAbove(kSecond, 0.0), 4u);
  EXPECT_EQ(hist.CountAbove(kSecond, 50.0), 1u);
  // Aged-out observations leave the count.
  clock.Advance(20 * kSecond);
  EXPECT_EQ(hist.CountAbove(8 * kSecond, 0.0), 0u);
}

// ------------------------------------ request-log rotation ----

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

TEST(RequestLogTest, SizeRotationPreservesEveryLineAndTheAccounting) {
  const std::string path = TempLogPath("rotate");
  RequestLogOptions options;
  options.path = path;
  options.sample_every = 1;
  options.slow_us = 1'000'000'000;
  options.rotate_bytes = 1500;  // ~16 entries of ~90 bytes per file
  options.max_rotated_files = 3;
  auto log = RequestLog::Open(options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 30; ++i) (*log)->Log(MakeEntry(i, 50));
  (*log)->Flush();

  EXPECT_EQ((*log)->accepted(), 30u);
  EXPECT_EQ((*log)->written() + (*log)->dropped(), (*log)->accepted());
  EXPECT_GE((*log)->rotations(), 1u);
  // Few enough rotations that nothing aged out of the kept chain: every
  // written line is on disk, whole, in exactly one file.
  size_t on_disk = CountLines(path);
  for (size_t i = 1; i <= options.max_rotated_files; ++i) {
    on_disk += CountLines(path + "." + std::to_string(i));
  }
  EXPECT_EQ(on_disk, (*log)->written());
  // Rotated files hold only complete JSON lines (no entry split across the
  // boundary).
  std::ifstream rotated(path + ".1");
  std::string line;
  while (std::getline(rotated, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  log->reset();
  std::remove(path.c_str());
  for (size_t i = 1; i <= options.max_rotated_files; ++i) {
    std::remove((path + "." + std::to_string(i)).c_str());
  }
}

TEST(RequestLogTest, RotationDropsBeyondMaxRotatedFiles) {
  const std::string path = TempLogPath("rotate_cap");
  RequestLogOptions options;
  options.path = path;
  options.sample_every = 1;
  options.slow_us = 1'000'000'000;
  options.rotate_bytes = 200;  // below one entry's size: every line rotates
  options.max_rotated_files = 2;
  auto log = RequestLog::Open(options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 40; ++i) (*log)->Log(MakeEntry(i, 50));
  (*log)->Flush();

  EXPECT_EQ((*log)->written() + (*log)->dropped(), (*log)->accepted());
  EXPECT_GE((*log)->rotations(), 5u);
  // The chain is bounded: path.1 and path.2 may exist, path.3 never does.
  EXPECT_FALSE(FileExists(path + ".3"));
  EXPECT_TRUE(FileExists(path + ".1"));
  // Old lines aged out of the kept chain, so disk holds fewer lines than
  // were written — but what is kept is the newest tail: the final entry's
  // id is in the kept chain (the active file, or path.1 when a rotation
  // landed right after it).
  size_t on_disk = CountLines(path) + CountLines(path + ".1") +
                   CountLines(path + ".2");
  EXPECT_LT(on_disk, (*log)->written());
  EXPECT_GT(on_disk, 0u);
  auto slurp = [](const std::string& p) {
    std::stringstream ss;
    ss << std::ifstream(p).rdbuf();
    return ss.str();
  };
  std::string all = slurp(path) + slurp(path + ".1");
  EXPECT_NE(all.find("\"request_id\":39,"), std::string::npos);
  log->reset();
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
}

TEST(RequestLogTest, RotationWithZeroKeptFilesDiscards) {
  const std::string path = TempLogPath("rotate_discard");
  RequestLogOptions options;
  options.path = path;
  options.sample_every = 1;
  options.slow_us = 1'000'000'000;
  options.rotate_bytes = 200;
  options.max_rotated_files = 0;
  auto log = RequestLog::Open(options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 40; ++i) (*log)->Log(MakeEntry(i, 50));
  (*log)->Flush();

  EXPECT_EQ((*log)->written() + (*log)->dropped(), (*log)->accepted());
  EXPECT_GE((*log)->rotations(), 5u);
  EXPECT_FALSE(FileExists(path + ".1"));
  EXPECT_LT(CountLines(path), (*log)->written());
  log->reset();
  std::remove(path.c_str());
}

TEST(RequestLogTest, RotationDisabledNeverRotates) {
  const std::string path = TempLogPath("rotate_off");
  RequestLogOptions options;
  options.path = path;
  options.sample_every = 1;
  options.slow_us = 1'000'000'000;
  options.rotate_bytes = 0;
  auto log = RequestLog::Open(options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 40; ++i) (*log)->Log(MakeEntry(i, 50));
  (*log)->Flush();
  EXPECT_EQ((*log)->rotations(), 0u);
  EXPECT_FALSE(FileExists(path + ".1"));
  EXPECT_EQ(CountLines(path), (*log)->written());
  log->reset();
  std::remove(path.c_str());
}

// --------------------------- HttpExporter lifecycle hardening ----

TEST(HttpExporterTest, TwoExportersGetDistinctEphemeralPorts) {
  HttpExporter a;
  HttpExporter b;
  auto route = [](const HttpRequest&) {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  };
  a.Route("/healthz", route);
  b.Route("/healthz", route);
  ASSERT_TRUE(a.Start(0).ok());
  ASSERT_TRUE(b.Start(0).ok());
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
  EXPECT_TRUE(HttpGet(a.port(), "/healthz").ok());
  EXPECT_TRUE(HttpGet(b.port(), "/healthz").ok());
  a.Stop();
  // Stopping one must not affect the other.
  EXPECT_TRUE(HttpGet(b.port(), "/healthz").ok());
  b.Stop();
}

TEST(HttpExporterTest, RestartAfterStopServesAgain) {
  HttpExporter exporter;
  exporter.Route("/healthz", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  ASSERT_TRUE(exporter.Start(0).ok());
  const int first_port = exporter.port();
  // A second Start while running is refused, not a silent rebind.
  EXPECT_EQ(exporter.Start(0).code(), StatusCode::kFailedPrecondition);
  exporter.Stop();
  ASSERT_FALSE(exporter.running());

  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_GT(exporter.port(), 0);
  int status = 0;
  auto body = HttpGet(exporter.port(), "/healthz", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(*body, "ok\n");
  exporter.Stop();
  (void)first_port;
}

// ---------------------------------------- end-to-end serving ----

std::vector<QueryLogRecord> TelemetryLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 150},
      {1, "java download", "www.java.com", 200},
      {4, "sun java", "www.java.com", 100},
      {4, "java download", "java.sun.com", 130},
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 160},
      {2, "solar energy", "www.energy.gov", 220},
      {5, "solar system", "www.nasa.gov", 90},
      {5, "solar energy", "www.nasa.gov", 140},
      {3, "sun", "www.thesun.co.uk", 100},
      {3, "sun daily uk", "www.thesun.co.uk", 150},
      {6, "sun daily uk", "www.thesun.co.uk", 110},
      {6, "uk news", "www.thesun.co.uk", 170},
  };
}

SuggestionRequest TelemetryRequest(const std::string& query) {
  SuggestionRequest request;
  request.query = query;
  request.timestamp = 400;
  return request;
}

// The acceptance test of the whole surface: a configured telemetry
// instance with a fake clock, a request log, and an exporter serving
// /metrics, /statusz and /tracez while SuggestBatch storms run. The
// windowed numbers must move across storms and the request-log
// accounting must balance exactly.
TEST(ServingTelemetryEndToEndTest, ScrapeDuringBatchStorms) {
  FakeClock clock;
  ServingTelemetryOptions options;
  options.window = clock.Options(kSecond, /*epochs=*/512);
  options.trace_sample_every = 4;
  ServingTelemetry& telemetry = ServingTelemetry::Install(options);

  const std::string log_path = TempLogPath("e2e");
  RequestLogOptions log_options;
  log_options.path = log_path;
  log_options.sample_every = 2;
  log_options.slow_us = 1'000'000'000;  // nothing qualifies as slow
  auto opened = RequestLog::Open(log_options);
  ASSERT_TRUE(opened.ok());
  telemetry.AttachRequestLog(std::move(opened).value());
  RequestLog* log = telemetry.request_log();
  ASSERT_NE(log, nullptr);

  HttpExporter exporter;
  telemetry.RegisterEndpoints(&exporter);
  ASSERT_TRUE(exporter.Start(0).ok());

  PqsdaEngineConfig config;
  config.personalize = false;  // keep the engine build fast
  config.cache_capacity = 64;
  auto engine = PqsdaEngine::Build(TelemetryLog(), config);
  ASSERT_TRUE(engine.ok());

  std::vector<SuggestionRequest> storm;
  for (int i = 0; i < 8; ++i) {
    storm.push_back(TelemetryRequest("sun"));
    storm.push_back(TelemetryRequest("solar energy"));
    storm.push_back(TelemetryRequest("sun java"));
    storm.push_back(TelemetryRequest("zzzz qqqq"));  // NotFound
  }

  // Scrapers hammer every endpoint while the storms are served.
  std::atomic<bool> done{false};
  std::atomic<int> scrapes_ok{0};
  std::vector<std::thread> scrapers;
  for (const char* path : {"/metrics", "/statusz", "/tracez", "/healthz"}) {
    scrapers.emplace_back([&exporter, &done, &scrapes_ok, path] {
      while (!done.load(std::memory_order_acquire)) {
        int status = 0;
        auto body = HttpGet(exporter.port(), path, &status);
        if (body.ok() && status == 200) {
          scrapes_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  auto results1 = (*engine)->SuggestBatch(storm, /*k=*/5);
  const uint64_t in_window_after_storm1 =
      telemetry.requests().SumOver(10 * kSecond);
  EXPECT_EQ(in_window_after_storm1, storm.size());

  // Step the clock past the 10s window: the first storm must drop out of
  // the short window but stay in the 5m one.
  clock.Advance(30 * kSecond);
  EXPECT_EQ(telemetry.requests().SumOver(10 * kSecond), 0u);
  EXPECT_EQ(telemetry.requests().SumOver(300 * kSecond), storm.size());

  auto results2 = (*engine)->SuggestBatch(storm, /*k=*/5);
  done.store(true, std::memory_order_release);
  for (auto& t : scrapers) t.join();

  EXPECT_EQ(telemetry.requests().SumOver(10 * kSecond), storm.size());
  EXPECT_EQ(telemetry.requests().SumOver(300 * kSecond), 2 * storm.size());
  WindowSnapshot latency = telemetry.latency().SnapshotOver(10 * kSecond);
  EXPECT_EQ(latency.count, storm.size());
  EXPECT_GT(latency.p50, 0.0);
  EXPECT_GE(latency.p99, latency.p95);
  EXPECT_GE(latency.p95, latency.p50);
  EXPECT_GT(scrapes_ok.load(), 0);

  // Every request (both storms) was served; NotFound counts as served
  // traffic, not an error.
  int not_found = 0;
  for (const auto& r : results1) {
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
      ++not_found;
    }
  }
  EXPECT_EQ(not_found, 8);

  // The scrape surface, observed directly once the storms are done.
  int status = 0;
  auto health = HttpGet(exporter.port(), "/healthz", &status);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(status, 200);

  auto statusz = HttpGet(exporter.port(), "/statusz", &status);
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(status, 200);
  for (const char* key : {"\"windows\"", "\"10s\"", "\"5m\"", "\"qps\"",
                          "\"p95\"", "\"pool\"", "\"cache\"",
                          "\"stages\"", "\"log\""}) {
    EXPECT_NE(statusz->find(key), std::string::npos) << key;
  }

  auto tracez = HttpGet(exporter.port(), "/tracez", &status);
  ASSERT_TRUE(tracez.ok());
  // trace_sample_every=4 over 64 requests: the ring cannot be empty.
  EXPECT_NE(tracez->find("\"recent\""), std::string::npos);
  EXPECT_NE(tracez->find("\"request_id\""), std::string::npos);

  auto prom = HttpGet(exporter.port(), "/metrics", &status);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("pqsda_suggest_requests_total"), std::string::npos);
  EXPECT_NE(prom->find("pqsda_suggest_latency_us_bucket"),
            std::string::npos);

  exporter.Stop();

  // Request-log accounting: every 2nd arrival accepted (none slow), and
  // after Flush the books balance exactly — written lines on disk match
  // written(), and nothing is unaccounted for.
  log->Flush();
  const uint64_t served = 2 * storm.size();
  EXPECT_EQ(log->seen(), served);
  EXPECT_EQ(log->accepted(), (served + 1) / 2);
  EXPECT_EQ(log->written() + log->dropped(), log->accepted());
  EXPECT_EQ(CountLines(log_path), log->written());

  // Each written line is one self-contained JSON object of the schema.
  std::ifstream in(log_path);
  std::string line;
  size_t checked = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"request_id\":"), std::string::npos);
    EXPECT_NE(line.find("\"total_us\":"), std::string::npos);
    EXPECT_NE(line.find("\"cache_hit\":"), std::string::npos);
    ++checked;
  }
  EXPECT_EQ(checked, log->written());
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace pqsda::obs
