#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "suggest/cacb_suggester.h"
#include "suggest/concept_suggester.h"
#include "suggest/dqs_suggester.h"
#include "suggest/engine.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/pqsda_diversifier.h"
#include "suggest/random_walk_suggester.h"

namespace pqsda {
namespace {

// A richer ambiguous log: "sun" has three facets (java, cellular/solar, uk
// newspaper), each with its own URL cluster.
std::vector<QueryLogRecord> AmbiguousLog() {
  return {
      // Facet A: java, user 1 + 4.
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 150},
      {1, "java download", "www.java.com", 200},
      {4, "sun java", "www.java.com", 100},
      {4, "java download", "java.sun.com", 130},
      // Facet B: solar, user 2 + 5.
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 160},
      {2, "solar energy", "www.energy.gov", 220},
      {5, "solar system", "www.nasa.gov", 90},
      {5, "solar energy", "www.nasa.gov", 140},
      // Facet C: newspaper, user 3 + 6.
      {3, "sun", "www.thesun.co.uk", 100},
      {3, "sun daily uk", "www.thesun.co.uk", 150},
      {6, "sun daily uk", "www.thesun.co.uk", 110},
      {6, "uk news", "www.thesun.co.uk", 170},
  };
}

class SuggestTest : public testing::Test {
 protected:
  SuggestTest()
      : records_(AmbiguousLog()),
        cg_(ClickGraph::Build(records_, EdgeWeighting::kRaw)) {}

  SuggestionRequest SunRequest() const {
    SuggestionRequest r;
    r.query = "sun";
    r.timestamp = 300;
    r.user = kNoUser;
    return r;
  }

  std::vector<QueryLogRecord> records_;
  ClickGraph cg_;
};

// --------------------------------------------------------- Finalize ----

TEST(FinalizeSuggestionsTest, SortsAndExcludes) {
  SuggestionRequest r;
  r.query = "input";
  r.context = {{"ctx", 0}};
  std::vector<Suggestion> cands = {
      {"low", 0.1}, {"input", 9.0}, {"high", 0.9}, {"ctx", 5.0}};
  auto out = FinalizeSuggestions(r, cands, 10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].query, "high");
  EXPECT_EQ(out[1].query, "low");
}

TEST(FinalizeSuggestionsTest, TruncatesToK) {
  SuggestionRequest r;
  r.query = "x";
  std::vector<Suggestion> cands = {{"a", 3}, {"b", 2}, {"c", 1}};
  auto out = FinalizeSuggestions(r, cands, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].query, "a");
}

// ------------------------------------------------------- FRW / BRW ----

TEST_F(SuggestTest, FrwSuggestsRelatedQueries) {
  RandomWalkSuggester frw(cg_, WalkDirection::kForward);
  auto out = frw.Suggest(SunRequest(), 5);
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->empty());
  // All suggestions reachable from "sun"; no self-suggestion.
  for (const auto& s : *out) EXPECT_NE(s.query, "sun");
}

TEST_F(SuggestTest, FrwUnknownQueryNotFound) {
  RandomWalkSuggester frw(cg_, WalkDirection::kForward);
  SuggestionRequest r;
  r.query = "never seen";
  auto out = frw.Suggest(r, 5);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(SuggestTest, BrwDiffersFromFrw) {
  RandomWalkSuggester frw(cg_, WalkDirection::kForward);
  RandomWalkSuggester brw(cg_, WalkDirection::kBackward);
  auto df = frw.WalkDistribution("sun");
  auto db = brw.WalkDistribution("sun");
  ASSERT_TRUE(df.ok() && db.ok());
  bool differs = false;
  for (size_t i = 0; i < df->size(); ++i) {
    if (std::abs((*df)[i] - (*db)[i]) > 1e-9) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST_F(SuggestTest, WalkDistributionSumsToOne) {
  RandomWalkSuggester frw(cg_, WalkDirection::kForward);
  auto d = frw.WalkDistribution("sun");
  ASSERT_TRUE(d.ok());
  double total = 0.0;
  for (double v : *d) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(SuggestTest, EngineNames) {
  RandomWalkSuggester frw(cg_, WalkDirection::kForward);
  RandomWalkSuggester brw(cg_, WalkDirection::kBackward);
  EXPECT_EQ(frw.name(), "FRW");
  EXPECT_EQ(brw.name(), "BRW");
}

// ----------------------------------------------------- Hitting time ----

TEST_F(SuggestTest, HittingTimeZeroOnSeeds) {
  StringId sun = cg_.QueryId("sun");
  auto h = BipartiteHittingTime(cg_.graph().query_to_object(),
                                cg_.graph().object_to_query(), {sun}, 16);
  EXPECT_DOUBLE_EQ(h[sun], 0.0);
}

TEST_F(SuggestTest, HittingTimeGrowsWithChainDistance) {
  // A clean line graph: q0 -u0- q1 -u1- q2 -u2- q3.
  std::vector<QueryLogRecord> recs;
  for (int i = 0; i < 3; ++i) {
    recs.push_back({0, "q" + std::to_string(i),
                    "u" + std::to_string(i) + ".com", i * 10});
    recs.push_back({0, "q" + std::to_string(i + 1),
                    "u" + std::to_string(i) + ".com", i * 10 + 5});
  }
  auto cg = ClickGraph::Build(recs, EdgeWeighting::kRaw);
  auto h = BipartiteHittingTime(cg.graph().query_to_object(),
                                cg.graph().object_to_query(),
                                {cg.QueryId("q0")}, 64);
  EXPECT_LT(h[cg.QueryId("q1")], h[cg.QueryId("q2")]);
  EXPECT_LT(h[cg.QueryId("q2")], h[cg.QueryId("q3")]);
}

TEST_F(SuggestTest, HittingTimeUnreachableSaturates) {
  std::vector<QueryLogRecord> recs = AmbiguousLog();
  recs.push_back({9, "isolated island", "www.lonely.com", 100});
  auto cg = ClickGraph::Build(recs, EdgeWeighting::kRaw);
  StringId sun = cg.QueryId("sun");
  auto h = BipartiteHittingTime(cg.graph().query_to_object(),
                                cg.graph().object_to_query(), {sun}, 16);
  EXPECT_DOUBLE_EQ(h[cg.QueryId("isolated island")], 16.0);
}

TEST_F(SuggestTest, HtRanksByProximity) {
  HittingTimeSuggester ht(cg_);
  auto out = ht.Suggest(SunRequest(), 10);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(out->size(), 2u);
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_GE((*out)[i - 1].score, (*out)[i].score);
  }
}

TEST_F(SuggestTest, ChainHittingTimeMixesChains) {
  // Single chain: 0 -> 1 -> 2 (deterministic), seed {0}.
  auto chain = CsrMatrix::FromTriplets(3, 3, {{1, 0, 1.0}, {2, 1, 1.0}});
  auto h = ChainHittingTime({&chain}, {1.0}, {0}, 10);
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 2.0);
}

TEST_F(SuggestTest, PhtPersonalizesTowardHistory) {
  PersonalizedHittingTimeSuggester pht(cg_, records_);
  EXPECT_EQ(pht.name(), "PHT");
  // User 1 (java history) vs user 2 (solar history).
  SuggestionRequest r1 = SunRequest();
  r1.user = 1;
  SuggestionRequest r2 = SunRequest();
  r2.user = 2;
  auto out1 = pht.Suggest(r1, 3);
  auto out2 = pht.Suggest(r2, 3);
  ASSERT_TRUE(out1.ok() && out2.ok());
  ASSERT_FALSE(out1->empty());
  ASSERT_FALSE(out2->empty());
  // Different users yield different top suggestions.
  EXPECT_NE((*out1)[0].query, (*out2)[0].query);
}

// ---------------------------------------------------------- DQS ----

TEST_F(SuggestTest, DqsCoversMultipleFacets) {
  DqsSuggester dqs(cg_);
  EXPECT_EQ(dqs.name(), "DQS");
  auto out = dqs.Suggest(SunRequest(), 6);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(out->size(), 3u);
  // The suggestions should touch at least 2 of the 3 URL clusters.
  std::set<std::string> facets;
  for (const auto& s : *out) {
    if (s.query.find("java") != std::string::npos) facets.insert("java");
    if (s.query.find("solar") != std::string::npos) facets.insert("solar");
    if (s.query.find("uk") != std::string::npos) facets.insert("uk");
  }
  EXPECT_GE(facets.size(), 2u);
}

// ------------------------------------------------------------- CM ----

class MapContentProvider : public PageContentProvider {
 public:
  void Add(const std::string& url,
           std::vector<std::pair<uint32_t, double>> vec) {
    map_[url] = std::move(vec);
  }
  const std::vector<std::pair<uint32_t, double>>* TermVector(
      const std::string& url) const override {
    auto it = map_.find(url);
    return it == map_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<std::string, std::vector<std::pair<uint32_t, double>>>
      map_;
};

TEST_F(SuggestTest, CmUsesUserProfile) {
  MapContentProvider pages;
  // Concepts: java pages share dims {0,1}; solar {2,3}; uk {4,5}.
  pages.Add("www.java.com", {{0, 1.0}, {1, 0.5}});
  pages.Add("java.sun.com", {{0, 0.8}, {1, 1.0}});
  pages.Add("www.nasa.gov", {{2, 1.0}, {3, 0.5}});
  pages.Add("www.energy.gov", {{2, 0.5}, {3, 1.0}});
  pages.Add("www.thesun.co.uk", {{4, 1.0}, {5, 1.0}});
  ConceptSuggester cm(cg_, records_, pages);
  EXPECT_EQ(cm.name(), "CM");

  SuggestionRequest r1 = SunRequest();
  r1.user = 1;  // java user
  auto out = cm.Suggest(r1, 3);
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->empty());
  // Top suggestion aligns with the java concept for the java user.
  EXPECT_TRUE((*out)[0].query.find("java") != std::string::npos)
      << (*out)[0].query;
}

// ------------------------------------------------------------ CACB ----

TEST_F(SuggestTest, CacbClustersCoClickedQueries) {
  auto sessions = Sessionize(records_);
  CacbSuggester cacb(cg_, records_, sessions);
  EXPECT_EQ(cacb.name(), "CACB");
  EXPECT_GT(cacb.num_concepts(), 0u);
  EXPECT_LE(cacb.num_concepts(), cg_.num_queries());
  // "solar system" and "solar energy" both click www.nasa.gov with high
  // overlap -> likely one concept; unknown queries map to UINT32_MAX.
  EXPECT_EQ(cacb.ConceptOf("nonexistent"), UINT32_MAX);
  EXPECT_NE(cacb.ConceptOf("sun"), UINT32_MAX);
}

TEST_F(SuggestTest, CacbSuggestsSessionContinuations) {
  auto sessions = Sessionize(records_);
  CacbSuggester cacb(cg_, records_, sessions);
  // In the log, "sun" is followed by "sun java" (user 1), "solar system"
  // (user 2) and "sun daily uk" (user 3).
  auto out = cacb.Suggest(SunRequest(), 5);
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->empty());
  std::set<std::string> suggested;
  for (const auto& s : *out) suggested.insert(s.query);
  EXPECT_TRUE(suggested.count("sun java") > 0 ||
              suggested.count("solar system") > 0 ||
              suggested.count("sun daily uk") > 0);
}

TEST_F(SuggestTest, CacbUnknownQueryNotFound) {
  auto sessions = Sessionize(records_);
  CacbSuggester cacb(cg_, records_, sessions);
  SuggestionRequest r;
  r.query = "never seen";
  auto out = cacb.Suggest(r, 5);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

// -------------------------------------------------- PQS-DA diversify ----

class PqsdaSuggestTest : public SuggestTest {
 protected:
  PqsdaSuggestTest()
      : sessions_(Sessionize(records_)),
        mb_(MultiBipartite::Build(records_, sessions_,
                                  EdgeWeighting::kCfIqf)) {}

  std::vector<Session> sessions_;
  MultiBipartite mb_;
};

TEST_F(PqsdaSuggestTest, DiversifierReturnsRankedList) {
  PqsdaDiversifier diversifier(mb_);
  EXPECT_EQ(diversifier.name(), "PQS-DA");
  auto out = diversifier.Suggest(SunRequest(), 5);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(out->size(), 3u);
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_GT((*out)[i - 1].score, (*out)[i].score);
  }
  for (const auto& s : *out) EXPECT_NE(s.query, "sun");
}

TEST_F(PqsdaSuggestTest, DiversifierCoversFacets) {
  PqsdaDiversifier diversifier(mb_);
  auto out = diversifier.Suggest(SunRequest(), 6);
  ASSERT_TRUE(out.ok());
  std::set<std::string> facets;
  for (const auto& s : *out) {
    if (s.query.find("java") != std::string::npos) facets.insert("java");
    if (s.query.find("solar") != std::string::npos) facets.insert("solar");
    if (s.query.find("uk") != std::string::npos) facets.insert("uk");
  }
  EXPECT_GE(facets.size(), 2u);
}

TEST_F(PqsdaSuggestTest, DiversifyExposesRelevance) {
  PqsdaDiversifier diversifier(mb_);
  auto out = diversifier.Diversify(SunRequest(), 4);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->relevance.size(), out->compact_queries.size());
  EXPECT_FALSE(out->candidates.empty());
}

TEST_F(PqsdaSuggestTest, ContextSteersFirstCandidate) {
  PqsdaDiversifier diversifier(mb_);
  SuggestionRequest with_ctx = SunRequest();
  with_ctx.context = {{"java download", 250}};
  auto ctx_out = diversifier.Suggest(with_ctx, 3);
  ASSERT_TRUE(ctx_out.ok());
  ASSERT_FALSE(ctx_out->empty());
  // With a java context, the top suggestion should be a java query.
  EXPECT_TRUE((*ctx_out)[0].query.find("java") != std::string::npos)
      << (*ctx_out)[0].query;
}

TEST_F(PqsdaSuggestTest, UnknownQueryWithNoTermOverlapNotFound) {
  PqsdaDiversifier diversifier(mb_);
  SuggestionRequest r;
  r.query = "zzz unknown";
  auto out = diversifier.Suggest(r, 5);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(PqsdaSuggestTest, UnknownQueryAnsweredThroughTermBipartite) {
  PqsdaDiversifier diversifier(mb_);
  // "solar power" never occurs in the log, but "solar" does: the term
  // bipartite must carry the request (the coverage advantage of §III, which
  // no click-graph baseline has).
  SuggestionRequest r;
  r.query = "solar power";
  r.timestamp = 400;
  auto out = diversifier.Suggest(r, 5);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_FALSE(out->empty());
  // The top suggestion shares the known term.
  EXPECT_NE((*out)[0].query.find("solar"), std::string::npos)
      << (*out)[0].query;
}

TEST_F(PqsdaSuggestTest, TermMatchSeedsRankedByWeight) {
  PqsdaDiversifier diversifier(mb_);
  auto seeds = diversifier.TermMatchSeeds("solar power");
  ASSERT_FALSE(seeds.empty());
  EXPECT_LE(seeds.size(), 8u);
  for (size_t i = 1; i < seeds.size(); ++i) {
    EXPECT_GE(seeds[i - 1].second, seeds[i].second);
  }
  // Every seed contains the matched term.
  for (const auto& [q, w] : seeds) {
    (void)w;
    EXPECT_NE(mb_.QueryString(q).find("solar"), std::string::npos);
  }
  EXPECT_TRUE(diversifier.TermMatchSeeds("zzz unknown").empty());
}

TEST_F(PqsdaSuggestTest, SuggestionsSortedByDescendingRelevance) {
  PqsdaDiversifier diversifier(mb_);
  auto out = diversifier.Diversify(SunRequest(), 5);
  ASSERT_TRUE(out.ok());
  // The selected list is F*-sorted; scores encode the ranking.
  for (size_t i = 1; i < out->candidates.size(); ++i) {
    EXPECT_GT(out->candidates[i - 1].score, out->candidates[i].score);
  }
}

}  // namespace
}  // namespace pqsda
