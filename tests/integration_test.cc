// End-to-end integration tests: generate a synthetic log, run the full
// PQS-DA pipeline and the baselines, and check the *shape* of the paper's
// headline claims on a small instance (the bench binaries reproduce the full
// figures).

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/pqsda_engine.h"
#include "eval/diversity.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "eval/harness.h"
#include "eval/hpr.h"
#include "eval/ppr.h"
#include "eval/relevance.h"
#include "eval/synthetic_adapters.h"
#include "suggest/dqs_suggester.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/random_walk_suggester.h"

namespace pqsda {
namespace {

struct Pipeline {
  Pipeline() {
    GeneratorConfig config;
    config.num_users = 80;
    config.sessions_per_user_min = 8;
    config.sessions_per_user_max = 14;
    config.facet_config.num_facets = 24;
    config.facet_config.num_concepts = 6;
    data = std::make_unique<SyntheticDataset>(GenerateLog(config));

    PqsdaEngineConfig engine_config;
    engine_config.diversifier.compact.target_size = 150;
    engine_config.upm.base.num_topics = 10;
    engine_config.upm.base.gibbs_iterations = 20;
    engine_config.upm.hyper_rounds = 1;
    auto built = PqsdaEngine::Build(data->records, engine_config);
    EXPECT_TRUE(built.ok());
    engine = std::move(built).value();

    cg = std::make_unique<ClickGraph>(
        ClickGraph::Build(data->records, EdgeWeighting::kCfIqf));
    pages = std::make_unique<ClickedPages>(ClickedPages::Build(data->records));
    sim = std::make_unique<SyntheticPageSimilarity>(data->facets);
    cats = std::make_unique<SyntheticQueryCategories>(*data);
  }

  std::unique_ptr<SyntheticDataset> data;
  std::unique_ptr<PqsdaEngine> engine;
  std::unique_ptr<ClickGraph> cg;
  std::unique_ptr<ClickedPages> pages;
  std::unique_ptr<SyntheticPageSimilarity> sim;
  std::unique_ptr<SyntheticQueryCategories> cats;
};

class IntegrationTest : public testing::Test {
 protected:
  static Pipeline& pipeline() {
    static Pipeline* p = new Pipeline();
    return *p;
  }
};

TEST_F(IntegrationTest, EngineSuggestsForSampledQueries) {
  auto& p = pipeline();
  auto tests = SampleTestQueries(*p.data, 20, 3);
  size_t ok_count = 0;
  for (const auto& t : tests) {
    auto out = p.engine->Suggest(t.request, 8);
    if (out.ok() && !out->empty()) ++ok_count;
  }
  // Nearly all sampled queries are in the training log, so suggestions must
  // come back for the vast majority.
  EXPECT_GE(ok_count, 18u);
}

TEST_F(IntegrationTest, DiversityBeatsRelevanceOnlyBaseline) {
  // The paper's headline (Fig. 3a/b): PQS-DA lists are more diverse than
  // FRW's relevance-only lists, averaged over ambiguous test queries.
  auto& p = pipeline();
  RandomWalkSuggester frw(*p.cg, WalkDirection::kForward);
  double pqsda_div = 0.0, frw_div = 0.0;
  int counted = 0;
  for (size_t c = 0; c < p.data->facets.concept_tokens().size(); ++c) {
    SuggestionRequest r;
    r.query = p.data->facets.concept_tokens()[c];
    r.timestamp = p.data->config.start_time;
    auto ours = p.engine->diversifier().Suggest(r, 10);
    auto theirs = frw.Suggest(r, 10);
    if (!ours.ok() || !theirs.ok()) continue;
    pqsda_div += ListDiversity(*ours, 10, *p.pages, *p.sim);
    frw_div += ListDiversity(*theirs, 10, *p.pages, *p.sim);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_GT(pqsda_div, frw_div);
}

TEST_F(IntegrationTest, AmbiguousQueryCoversMultipleConceptFacets) {
  auto& p = pipeline();
  const auto& token = p.data->facets.concept_tokens()[0];
  SuggestionRequest r;
  r.query = token;
  r.timestamp = p.data->config.start_time;
  auto out = p.engine->diversifier().Suggest(r, 10);
  ASSERT_TRUE(out.ok());
  std::set<FacetId> covered;
  for (const auto& s : *out) {
    for (FacetId f : p.data->facets.QueryFacets(s.query)) covered.insert(f);
  }
  EXPECT_GE(covered.size(), 2u);
}

TEST_F(IntegrationTest, RelevanceReasonableAtTop1) {
  auto& p = pipeline();
  auto tests = SampleTestQueries(*p.data, 30, 11);
  double total = 0.0;
  int counted = 0;
  for (const auto& t : tests) {
    auto out = p.engine->diversifier().Suggest(t.request, 5);
    if (!out.ok() || out->empty()) continue;
    total += ListRelevance(t.request.query, *out, 1, p.data->taxonomy,
                           *p.cats);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  // Top-1 suggestions should on average be closely related (same or nearby
  // category): well above the unrelated-pair floor of 1/4.
  EXPECT_GT(total / counted, 0.5);
}

TEST_F(IntegrationTest, PersonalizationImprovesPprOverDiversifiedOrder) {
  auto& p = pipeline();
  auto split = SplitByRecentSessions(*p.data, 3);
  // Evaluate on the engine built from the full log for speed; the bench does
  // the strict split. Here we only check the *mechanism*: preference
  // reranking raises PPR against the user's next-session clicks more often
  // than it lowers it.
  double per_gain = 0.0;
  int counted = 0;
  for (const auto& ts : split.test_sessions) {
    if (ts.clicked_titles.empty()) continue;
    auto req = RequestFromTestSession(ts);
    auto diversified = p.engine->diversifier().Suggest(req, 10);
    if (!diversified.ok() || diversified->size() < 3) continue;
    auto personalized = p.engine->personalizer()->Rerank(ts.user, *diversified);
    double ppr_d = ListPpr(*diversified, 5, ts.clicked_titles);
    double ppr_p = ListPpr(personalized, 5, ts.clicked_titles);
    per_gain += ppr_p - ppr_d;
    if (++counted >= 60) break;
  }
  ASSERT_GT(counted, 10);
  EXPECT_GE(per_gain / counted, -0.005);  // not worse on average
}

TEST_F(IntegrationTest, HprOracleFavorsPersonalizedList) {
  auto& p = pipeline();
  auto split = SplitByRecentSessions(*p.data, 3);
  SimulatedRater rater(p.data->taxonomy, p.data->facets, 0.05, 17);
  double hpr = 0.0;
  int counted = 0;
  for (const auto& ts : split.test_sessions) {
    auto req = RequestFromTestSession(ts);
    auto out = p.engine->Suggest(req, 10);
    if (!out.ok() || out->empty()) continue;
    hpr += rater.RateList(ts.intent, *out, 5);
    if (++counted >= 60) break;
  }
  ASSERT_GT(counted, 10);
  // Suggestions should be clearly better than random (random facet pairs
  // rate near 0.1-0.2).
  EXPECT_GT(hpr / counted, 0.3);
}

TEST_F(IntegrationTest, SuggestStatsReportsAllPipelineStages) {
  auto& p = pipeline();
  // A sampled request carries a user drawn from the log, so the UPM rerank
  // actually runs.
  auto tests = SampleTestQueries(*p.data, 10, 31);
  const TestQuery* chosen = nullptr;
  for (const auto& t : tests) {
    if (t.request.user != kNoUser &&
        p.engine->corpus().DocumentOf(t.request.user) != SIZE_MAX) {
      chosen = &t;
      break;
    }
  }
  ASSERT_NE(chosen, nullptr);

  SuggestStats stats;
  auto out = p.engine->Suggest(chosen->request, 8, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(stats.personalized);
  EXPECT_EQ(stats.suggestions_returned, out->size());

  // The trace tree contains all four pipeline stages with nonzero
  // durations...
  EXPECT_EQ(stats.trace.name, "suggest");
  int64_t stage_ns = 0;
  for (const char* stage : {"expansion", "regularization_solve",
                            "hitting_time_selection", "personalization"}) {
    const obs::SpanNode* span = stats.trace.Find(stage);
    ASSERT_NE(span, nullptr) << "missing stage span: " << stage;
    EXPECT_GT(span->duration_ns, 0) << stage;
    stage_ns += span->duration_ns;
  }
  // ...and the stages account for the request end to end: their summed
  // wall time is within 20% of the root span's.
  ASSERT_GT(stats.trace.duration_ns, 0);
  EXPECT_LE(stage_ns, stats.trace.duration_ns);
  EXPECT_GE(static_cast<double>(stage_ns),
            0.8 * static_cast<double>(stats.trace.duration_ns));

  // The expansion/solver/selection counters rode along.
  EXPECT_GT(stats.compact_size, 0u);
  EXPECT_GT(stats.expansion.rounds, 0u);
  EXPECT_GT(stats.expansion.walk_steps, 0u);
  EXPECT_TRUE(stats.solve.converged);
  EXPECT_GT(stats.solve.iterations, 0u);
  EXPECT_GT(stats.hitting_rounds, 0u);
  EXPECT_GT(stats.candidates_scored, 0u);
  EXPECT_NE(stats.Render().find("expansion"), std::string::npos);
}

TEST_F(IntegrationTest, SuggestStatsSurviveDiversificationOnlyMode) {
  auto& p = pipeline();
  // Diversification-only engine (§VI-B): personalize = false skips UPM
  // training; stats collection must keep working, minus the
  // personalization stage.
  PqsdaEngineConfig config;
  config.diversifier.compact.target_size = 120;
  config.personalize = false;
  auto built = PqsdaEngine::Build(p.data->records, config);
  ASSERT_TRUE(built.ok());

  obs::Counter& requests = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.suggest.requests_total");
  uint64_t requests_before = requests.Value();

  auto tests = SampleTestQueries(*p.data, 5, 41);
  ASSERT_FALSE(tests.empty());
  SuggestStats stats;
  auto out = (*built)->Suggest(tests[0].request, 8, &stats);
  ASSERT_TRUE(out.ok());

  EXPECT_FALSE(stats.personalized);
  EXPECT_EQ(stats.trace.Find("personalization"), nullptr);
  for (const char* stage :
       {"expansion", "regularization_solve", "hitting_time_selection"}) {
    const obs::SpanNode* span = stats.trace.Find(stage);
    ASSERT_NE(span, nullptr) << "missing stage span: " << stage;
    EXPECT_GT(span->duration_ns, 0) << stage;
  }
  EXPECT_GT(stats.compact_size, 0u);
  EXPECT_TRUE(stats.solve.converged);

  // The registry metrics survived the diversification-only path too.
  EXPECT_GT(requests.Value(), requests_before);
}

TEST_F(IntegrationTest, BaselinesRunOnSameRequests) {
  auto& p = pipeline();
  HittingTimeSuggester ht(*p.cg);
  DqsSuggester dqs(*p.cg);
  PersonalizedHittingTimeSuggester pht(*p.cg, p.data->records);
  auto tests = SampleTestQueries(*p.data, 10, 23);
  for (const auto& t : tests) {
    for (SuggestionEngine* e :
         std::initializer_list<SuggestionEngine*>{&ht, &dqs, &pht}) {
      auto out = e->Suggest(t.request, 5);
      // Engines may fail on click-less queries, but must not crash and must
      // return a clean status.
      if (!out.ok()) {
        EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
      }
    }
  }
}

}  // namespace
}  // namespace pqsda
