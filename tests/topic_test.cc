#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "log/sessionizer.h"
#include "synthetic/generator.h"
#include "topic/click_models.h"
#include "topic/corpus.h"
#include "topic/lda.h"
#include "topic/perplexity.h"
#include "topic/ptm.h"
#include "topic/sstm.h"
#include "topic/tot.h"
#include "topic/upm.h"

namespace pqsda {
namespace {

std::vector<QueryLogRecord> SmallLog() {
  return {
      {0, "sun java", "www.java.com", 100},
      {0, "java download", "java.sun.com", 150},
      {0, "sun java", "www.java.com", 5000},
      {1, "solar energy", "www.energy.gov", 100},
      {1, "solar system", "www.nasa.gov", 160},
      {1, "solar energy", "www.energy.gov", 9000},
  };
}

QueryLogCorpus SmallCorpus() {
  auto records = SmallLog();
  auto sessions = Sessionize(records);
  return QueryLogCorpus::Build(records, sessions);
}

// ----------------------------------------------------------- Corpus ----

TEST(CorpusTest, OneDocumentPerUser) {
  auto corpus = SmallCorpus();
  EXPECT_EQ(corpus.num_documents(), 2u);
  EXPECT_EQ(corpus.DocumentOf(0), 0u);
  EXPECT_EQ(corpus.DocumentOf(1), 1u);
  EXPECT_EQ(corpus.DocumentOf(99), SIZE_MAX);
}

TEST(CorpusTest, TimestampsNormalized) {
  auto corpus = SmallCorpus();
  for (const auto& doc : corpus.documents()) {
    for (const auto& s : doc.sessions) {
      EXPECT_GE(s.timestamp, 0.01);
      EXPECT_LE(s.timestamp, 0.99);
    }
  }
}

TEST(CorpusTest, WordsAndUrlsInterned) {
  auto corpus = SmallCorpus();
  EXPECT_GT(corpus.vocab_size(), 0u);
  EXPECT_GT(corpus.num_urls(), 0u);
  auto ids = corpus.WordIds("sun java");
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE(corpus.WordIds("unknownword").empty());
}

TEST(CorpusTest, QueryOffsetsAndUrlIndex) {
  auto corpus = SmallCorpus();
  const auto& s = corpus.documents()[0].sessions[0];
  EXPECT_EQ(s.num_queries(), 2u);  // "sun java" + "java download"
  auto [b0, e0] = s.QueryWordRange(0);
  EXPECT_EQ(e0 - b0, 2u);
  ASSERT_EQ(s.urls.size(), s.url_query_index.size());
  for (uint32_t qi : s.url_query_index) EXPECT_LT(qi, s.num_queries());
}

TEST(CorpusTest, SplitBySessionsKeepsIndices) {
  auto corpus = SmallCorpus();
  QueryLogCorpus train, test;
  corpus.SplitBySessions(0.5, &train, &test);
  EXPECT_EQ(train.num_documents(), corpus.num_documents());
  EXPECT_EQ(test.num_documents(), corpus.num_documents());
  EXPECT_EQ(train.vocab_size(), corpus.vocab_size());
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    EXPECT_EQ(train.documents()[d].sessions.size() +
                  test.documents()[d].sessions.size(),
              corpus.documents()[d].sessions.size());
    EXPECT_GE(train.documents()[d].sessions.size(), 1u);
  }
}

// A moderately sized corpus for model sanity checks.
struct TrainedFixture {
  TrainedFixture() {
    GeneratorConfig config;
    config.num_users = 60;
    config.sessions_per_user_min = 10;
    config.sessions_per_user_max = 16;
    config.facet_config.num_facets = 12;
    config.facet_config.num_concepts = 3;
    config.facet_config.queries_per_facet = 60;
    data = std::make_unique<SyntheticDataset>(GenerateLog(config));
    auto sessions = Sessionize(data->records);
    corpus = QueryLogCorpus::Build(data->records, sessions);
  }
  std::unique_ptr<SyntheticDataset> data;
  QueryLogCorpus corpus;
};

TopicModelOptions FastOptions() {
  TopicModelOptions o;
  o.num_topics = 8;
  o.gibbs_iterations = 25;
  return o;
}

void CheckModelSanity(TopicModel& model, const QueryLogCorpus& corpus) {
  model.Train(corpus);
  for (size_t d = 0; d < std::min<size_t>(corpus.num_documents(), 5); ++d) {
    auto theta = model.DocumentTopicMixture(d);
    ASSERT_EQ(theta.size(), model.num_topics());
    double t_sum = 0.0;
    for (double v : theta) {
      EXPECT_GE(v, 0.0);
      t_sum += v;
    }
    EXPECT_NEAR(t_sum, 1.0, 1e-6);
    auto p = model.PredictiveWordDistribution(d);
    ASSERT_EQ(p.size(), corpus.vocab_size());
    double p_sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      p_sum += v;
    }
    EXPECT_NEAR(p_sum, 1.0, 1e-6);
  }
}

class ModelSanityTest : public testing::Test {
 protected:
  static TrainedFixture& fixture() {
    static TrainedFixture* f = new TrainedFixture();
    return *f;
  }
};

TEST_F(ModelSanityTest, Lda) {
  LdaModel m(FastOptions());
  CheckModelSanity(m, fixture().corpus);
}

TEST_F(ModelSanityTest, Tot) {
  TotModel m(FastOptions());
  CheckModelSanity(m, fixture().corpus);
  auto [a, b] = m.TopicBeta(0);
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, 0.0);
}

TEST_F(ModelSanityTest, Ptm1) {
  Ptm1Model m(FastOptions());
  CheckModelSanity(m, fixture().corpus);
}

TEST_F(ModelSanityTest, Ptm2) {
  Ptm2Model m(FastOptions());
  CheckModelSanity(m, fixture().corpus);
}

TEST_F(ModelSanityTest, Mwm) {
  MwmModel m(FastOptions());
  CheckModelSanity(m, fixture().corpus);
}

TEST_F(ModelSanityTest, Tum) {
  TumModel m(FastOptions());
  CheckModelSanity(m, fixture().corpus);
}

TEST_F(ModelSanityTest, Ctm) {
  CtmModel m(FastOptions());
  CheckModelSanity(m, fixture().corpus);
}

TEST_F(ModelSanityTest, Sstm) {
  SstmModel m(FastOptions());
  CheckModelSanity(m, fixture().corpus);
}

TEST_F(ModelSanityTest, Upm) {
  UpmOptions o;
  o.base = FastOptions();
  o.hyper_rounds = 1;
  UpmModel m(o);
  CheckModelSanity(m, fixture().corpus);
}

TEST_F(ModelSanityTest, ModelNamesDistinct) {
  std::vector<std::unique_ptr<TopicModel>> models;
  models.push_back(std::make_unique<LdaModel>());
  models.push_back(std::make_unique<TotModel>());
  models.push_back(std::make_unique<Ptm1Model>());
  models.push_back(std::make_unique<Ptm2Model>());
  models.push_back(std::make_unique<MwmModel>());
  models.push_back(std::make_unique<TumModel>());
  models.push_back(std::make_unique<CtmModel>());
  models.push_back(std::make_unique<SstmModel>());
  models.push_back(std::make_unique<UpmModel>());
  std::set<std::string> names;
  for (const auto& m : models) names.insert(m->name());
  EXPECT_EQ(names.size(), models.size());
}

// ----------------------------------------------------------- UPM ----

TEST_F(ModelSanityTest, UpmLearnsHyperparameters) {
  UpmOptions o;
  o.base = FastOptions();
  o.hyper_rounds = 1;
  UpmModel m(o);
  m.Train(fixture().corpus);
  // Hyperparameters moved away from the symmetric initialization.
  bool alpha_moved = false;
  for (double a : m.alpha()) {
    if (std::abs(a - o.base.alpha) > 1e-6) alpha_moved = true;
  }
  EXPECT_TRUE(alpha_moved);
  bool beta_moved = false;
  for (const auto& row : m.beta()) {
    for (double b : row) {
      if (std::abs(b - o.base.beta) > 1e-6) beta_moved = true;
    }
  }
  EXPECT_TRUE(beta_moved);
}

TEST_F(ModelSanityTest, UpmPreferenceScoreDiscriminates) {
  UpmOptions o;
  o.base = FastOptions();
  o.hyper_rounds = 1;
  UpmModel m(o);
  const auto& fx = fixture();
  m.Train(fx.corpus);
  // For a user, a query from their own history should score higher than a
  // random other facet's query (on average over several users).
  int wins = 0, trials = 0;
  for (size_t d = 0; d < std::min<size_t>(fx.corpus.num_documents(), 10);
       ++d) {
    const auto& doc = fx.corpus.documents()[d];
    if (doc.sessions.empty()) continue;
    std::vector<uint32_t> own_words = doc.sessions[0].words;
    // Words of a facet this user (likely) never touched: use another doc's.
    size_t other = (d + 15) % fx.corpus.num_documents();
    if (fx.corpus.documents()[other].sessions.empty()) continue;
    std::vector<uint32_t> other_words =
        fx.corpus.documents()[other].sessions[0].words;
    ++trials;
    if (m.PreferenceScore(d, own_words) > m.PreferenceScore(d, other_words)) {
      ++wins;
    }
  }
  ASSERT_GT(trials, 0);
  EXPECT_GT(static_cast<double>(wins) / trials, 0.5);
}

TEST_F(ModelSanityTest, UpmPreferenceScoreEdgeCases) {
  UpmOptions o;
  o.base = FastOptions();
  o.hyper_rounds = 0;
  o.learn_hyperparameters = false;
  UpmModel m(o);
  m.Train(fixture().corpus);
  EXPECT_GT(m.PreferenceScore(SIZE_MAX, {0}), 0.0);  // unknown doc -> floor
  EXPECT_GT(m.PreferenceScore(0, {}), 0.0);          // empty query -> floor
}

// ------------------------------------------------------- Perplexity ----

TEST_F(ModelSanityTest, PerplexityFiniteAndPositive) {
  const auto& fx = fixture();
  QueryLogCorpus train, test;
  fx.corpus.SplitBySessions(0.3, &train, &test);
  LdaModel m(FastOptions());
  m.Train(train);
  auto result = EvaluatePerplexity(m, test);
  EXPECT_GT(result.predicted_words, 0u);
  EXPECT_GT(result.perplexity, 1.0);
  EXPECT_TRUE(std::isfinite(result.perplexity));
}

TEST_F(ModelSanityTest, TrainedModelFarBeatsUniformPerplexity) {
  const auto& fx = fixture();
  QueryLogCorpus train, test;
  fx.corpus.SplitBySessions(0.3, &train, &test);
  LdaModel trained(FastOptions());
  trained.Train(train);
  double p_trained = EvaluatePerplexity(trained, test).perplexity;
  // A uniform model scores perplexity == vocabulary size; a trained model
  // must beat it even on this deliberately tiny fixture (the Fig. 4 bench
  // shows much larger margins at realistic scale).
  EXPECT_LT(p_trained, 0.9 * static_cast<double>(fx.corpus.vocab_size()));
}

TEST(PerplexityTest, EmptyTestCorpus) {
  auto corpus = SmallCorpus();
  LdaModel m(TopicModelOptions{4, 0.5, 0.01, 0.01, 5, 1});
  m.Train(corpus);
  QueryLogCorpus train, test;
  corpus.SplitBySessions(0.0, &train, &test);
  auto result = EvaluatePerplexity(m, test);
  EXPECT_EQ(result.predicted_words, 0u);
  EXPECT_EQ(result.perplexity, 0.0);
}

}  // namespace
}  // namespace pqsda
