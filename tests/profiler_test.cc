// The deep performance-attribution surface: StageProfiler windowed
// per-stage/per-rung cost attribution (unit tests on a fake clock plus the
// acceptance reconciliation of /profilez against SuggestStats traces),
// exemplar-linked latency buckets resolving to /tracez or the request log,
// the burn-rate SLO state machine driven end to end through fault-injected
// load shedding at /alertz, and the online quality telemetry (Simpson's
// index + coverage). run_benches.sh re-runs this binary under TSAN/ASan.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "core/pqsda_engine.h"
#include "eval/diversity.h"
#include "obs/http_exporter.h"
#include "obs/quality.h"
#include "obs/request_log.h"
#include "obs/slo.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"

namespace pqsda {
namespace {

constexpr int64_t kSecond = 1'000'000'000;

using obs::ProfileStage;
using obs::StageProfiler;
using obs::StageScope;

// Fake monotonic clock for the window rings (see telemetry_test.cc). Stage
// wall/cpu measurements always read the real clocks; only epoch bucketing
// uses the injected one, so tests can pin epochs without faking durations.
struct FakeClock {
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);
  obs::WindowOptions Options(int64_t epoch_ns = kSecond,
                             size_t epochs = 8) const {
    obs::WindowOptions o;
    o.epoch_ns = epoch_ns;
    o.epochs = epochs;
    o.clock = [now = now] { return now->load(std::memory_order_relaxed); };
    return o;
  }
  void Advance(int64_t ns) { now->fetch_add(ns, std::memory_order_relaxed); }
};

size_t Idx(ProfileStage stage) { return static_cast<size_t>(stage); }

// ------------------------------------------------ StageProfiler ----

TEST(StageProfilerTest, AttributesStagesAndWorkToRung) {
  FakeClock clock;
  StageProfiler profiler(clock.Options());

  profiler.BeginRequest();
  {
    StageScope scope(ProfileStage::kExpansion);
    StageProfiler::AddWork(ProfileStage::kExpansion, 40);
  }
  {
    StageScope scope(ProfileStage::kSolve);
    StageProfiler::AddWork(ProfileStage::kSolve, 7);
  }
  profiler.EndRequest(/*rung=*/1);

  StageProfiler::Snapshot snap = profiler.SnapshotOver(kSecond);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kRequest)].count, 1u);
  EXPECT_GE(snap.total[Idx(ProfileStage::kRequest)].wall_ns, 0);
  EXPECT_EQ(snap.per_rung[1][Idx(ProfileStage::kExpansion)].count, 1u);
  EXPECT_EQ(snap.per_rung[1][Idx(ProfileStage::kExpansion)].work, 40u);
  EXPECT_EQ(snap.per_rung[1][Idx(ProfileStage::kSolve)].work, 7u);
  // Nothing leaked onto another rung or stage.
  EXPECT_EQ(snap.per_rung[0][Idx(ProfileStage::kRequest)].count, 0u);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kSelection)].count, 0u);
  // Stage scopes run strictly inside the request bracket.
  EXPECT_LE(snap.total[Idx(ProfileStage::kExpansion)].wall_ns +
                snap.total[Idx(ProfileStage::kSolve)].wall_ns,
            snap.total[Idx(ProfileStage::kRequest)].wall_ns + 1'000'000);
}

TEST(StageProfilerTest, DisabledProfilerRecordsNothing) {
  FakeClock clock;
  StageProfiler profiler(clock.Options());
  profiler.SetEnabled(false);

  profiler.BeginRequest();
  {
    StageScope scope(ProfileStage::kExpansion);
    StageProfiler::AddWork(ProfileStage::kExpansion, 99);
  }
  profiler.EndRequest(0);

  StageProfiler::Snapshot snap = profiler.SnapshotOver(kSecond);
  for (size_t s = 0; s < obs::kProfileStageCount; ++s) {
    EXPECT_EQ(snap.total[s].count, 0u) << s;
    EXPECT_EQ(snap.total[s].work, 0u) << s;
  }
  EXPECT_FALSE(profiler.enabled());
  profiler.SetEnabled(true);
  EXPECT_TRUE(profiler.enabled());
}

TEST(StageProfilerTest, WorkOutsideRequestIsDropped) {
  FakeClock clock;
  StageProfiler profiler(clock.Options());
  // No BeginRequest on this thread: both the scope and the work are no-ops.
  {
    StageScope scope(ProfileStage::kSolve);
    StageProfiler::AddWork(ProfileStage::kSolve, 1234);
  }
  profiler.BeginRequest();
  profiler.EndRequest(0);
  StageProfiler::Snapshot snap = profiler.SnapshotOver(kSecond);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kSolve)].count, 0u);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kSolve)].work, 0u);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kRequest)].count, 1u);
}

TEST(StageProfilerTest, OldEpochsAgeOutOfTheWindow) {
  FakeClock clock;
  StageProfiler profiler(clock.Options(kSecond, /*epochs=*/8));
  profiler.BeginRequest();
  StageProfiler::AddWork(ProfileStage::kExpansion, 5);
  profiler.EndRequest(0);

  clock.Advance(10 * kSecond);  // beyond the 8-epoch ring
  profiler.BeginRequest();
  StageProfiler::AddWork(ProfileStage::kExpansion, 3);
  profiler.EndRequest(0);

  StageProfiler::Snapshot recent = profiler.SnapshotOver(kSecond);
  EXPECT_EQ(recent.total[Idx(ProfileStage::kRequest)].count, 1u);
  EXPECT_EQ(recent.total[Idx(ProfileStage::kExpansion)].work, 3u);
  // Even the widest answerable window no longer sees the first request.
  StageProfiler::Snapshot all = profiler.SnapshotOver(60 * kSecond);
  EXPECT_EQ(all.total[Idx(ProfileStage::kRequest)].count, 1u);
  EXPECT_EQ(all.total[Idx(ProfileStage::kExpansion)].work, 3u);
}

TEST(StageProfilerTest, ConcurrentRequestsAllFold) {
  FakeClock clock;
  StageProfiler profiler(clock.Options(kSecond, /*epochs=*/16));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler, t] {
      for (int i = 0; i < kPerThread; ++i) {
        profiler.BeginRequest();
        {
          StageScope scope(ProfileStage::kSelection);
          StageProfiler::AddWork(ProfileStage::kSelection, 2);
        }
        profiler.EndRequest(static_cast<size_t>(t) % obs::kProfileRungCount);
      }
    });
  }
  std::thread reader([&profiler] {
    for (int i = 0; i < 200; ++i) {
      (void)profiler.SnapshotOver(4 * kSecond);
      (void)profiler.ProfilezJson(4 * kSecond);
    }
  });
  for (auto& t : threads) t.join();
  reader.join();
  // The clock never moved: every fold landed in epoch 0.
  StageProfiler::Snapshot snap = profiler.SnapshotOver(16 * kSecond);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kRequest)].count,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.total[Idx(ProfileStage::kSelection)].work,
            static_cast<uint64_t>(2 * kThreads * kPerThread));
}

TEST(StageProfilerTest, ProfilezJsonIsAFlameTreeWithSelfLeaves) {
  FakeClock clock;
  StageProfiler profiler(clock.Options());
  profiler.BeginRequest();
  {
    StageScope scope(ProfileStage::kExpansion);
    StageProfiler::AddWork(ProfileStage::kExpansion, 12);
  }
  profiler.EndRequest(/*rung=*/0);

  const std::string json = profiler.ProfilezJson(kSecond);
  EXPECT_NE(json.find("\"window_ns\":" + std::to_string(kSecond)),
            std::string::npos);
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"suggest\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rung_full\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"expansion\""), std::string::npos);
  EXPECT_NE(json.find("\"work\":12"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"self\""), std::string::npos);
  // Rungs that served no traffic are omitted from the tree.
  EXPECT_EQ(json.find("rung_cache_only"), std::string::npos);
}

// --------------------------------------- quality telemetry ----

TEST(SimpsonDiversityTest, KnownValues) {
  // All-distinct terms: every pair differs.
  EXPECT_DOUBLE_EQ(obs::SimpsonDiversityFromCounts({1, 1, 1, 1}), 1.0);
  // One term repeated four times: no pair differs.
  EXPECT_DOUBLE_EQ(obs::SimpsonDiversityFromCounts({4}), 0.0);
  // {a,a,b,b}: 1 - (2+2)/(4*3) = 2/3.
  EXPECT_NEAR(obs::SimpsonDiversityFromCounts({2, 2}), 2.0 / 3.0, 1e-12);
  // Degenerate multisets have no pairwise diversity.
  EXPECT_DOUBLE_EQ(obs::SimpsonDiversityFromCounts({}), 0.0);
  EXPECT_DOUBLE_EQ(obs::SimpsonDiversityFromCounts({1}), 0.0);
}

TEST(SimpsonDiversityTest, ListSimpsonDiversityTokenizesSuggestions) {
  std::vector<Suggestion> repetitive = {{"solar solar", 1.0},
                                        {"solar", 0.5}};
  EXPECT_DOUBLE_EQ(ListSimpsonDiversity(repetitive), 0.0);

  std::vector<Suggestion> distinct = {{"solar energy", 1.0},
                                      {"java download", 0.5}};
  EXPECT_DOUBLE_EQ(ListSimpsonDiversity(distinct), 1.0);

  std::vector<Suggestion> mixed = {{"sun java", 1.0}, {"sun news", 0.5}};
  // Terms {sun, sun, java, news}: 1 - 2/(4*3) = 5/6.
  EXPECT_NEAR(ListSimpsonDiversity(mixed), 5.0 / 6.0, 1e-12);

  EXPECT_DOUBLE_EQ(ListSimpsonDiversity({}), 0.0);
}

TEST(QualityTelemetryTest, HeadSamplingEveryNth) {
  obs::QualityTelemetryOptions options;
  options.sample_every = 4;
  obs::QualityTelemetry quality(options);
  int sampled = 0;
  for (int i = 0; i < 12; ++i) {
    if (quality.Sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);  // arrivals 0, 4, 8

  obs::QualityTelemetryOptions off;
  off.sample_every = 0;
  obs::QualityTelemetry disabled(off);
  EXPECT_FALSE(disabled.Sample());

  obs::QualityTelemetryOptions all;
  all.sample_every = 1;
  obs::QualityTelemetry every(all);
  EXPECT_TRUE(every.Sample());
  EXPECT_TRUE(every.Sample());
}

TEST(QualityTelemetryTest, WindowedCellMeansSplitByRungAndHit) {
  FakeClock clock;
  obs::QualityTelemetryOptions options;
  options.window = clock.Options();
  obs::QualityTelemetry quality(options);

  quality.Record(/*rung=*/0, /*cache_hit=*/false, /*simpson=*/0.5,
                 /*coverage=*/1.0);
  quality.Record(0, false, 1.0, 0.6);
  quality.Record(2, true, 0.25, 0.5);

  obs::QualityTelemetry::CellSnapshot miss =
      quality.SnapshotCell(0, false, kSecond);
  EXPECT_EQ(miss.samples, 2u);
  EXPECT_NEAR(miss.simpson_mean, 0.75, 1e-12);
  EXPECT_NEAR(miss.coverage_mean, 0.8, 1e-12);

  obs::QualityTelemetry::CellSnapshot hit =
      quality.SnapshotCell(2, true, kSecond);
  EXPECT_EQ(hit.samples, 1u);
  EXPECT_NEAR(hit.simpson_mean, 0.25, 1e-12);

  EXPECT_EQ(quality.SnapshotCell(0, true, kSecond).samples, 0u);
  EXPECT_EQ(quality.SnapshotCell(3, false, kSecond).samples, 0u);

  // The recorded samples age out with the ring.
  clock.Advance(20 * kSecond);
  EXPECT_EQ(quality.SnapshotCell(0, false, 8 * kSecond).samples, 0u);
}

TEST(QualityTelemetryTest, StatuszSectionOmitsEmptyCells) {
  FakeClock clock;
  obs::QualityTelemetryOptions options;
  options.window = clock.Options();
  options.sample_every = 2;
  obs::QualityTelemetry quality(options);
  quality.Record(0, false, 1.0, 1.0);

  const std::string json = quality.StatuszSection(kSecond);
  EXPECT_NE(json.find("\"sample_every\":2"), std::string::npos);
  EXPECT_NE(json.find("\"full\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_miss\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\":1"), std::string::npos);
  // No traffic on the degraded rungs: their cells are absent.
  EXPECT_EQ(json.find("\"walk_only\""), std::string::npos);
  EXPECT_EQ(json.find("\"cache_hit\""), std::string::npos);
}

// ------------------------------------ end-to-end fixtures ----

std::vector<QueryLogRecord> ProfilerLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 150},
      {1, "java download", "www.java.com", 200},
      {4, "sun java", "www.java.com", 100},
      {4, "java download", "java.sun.com", 130},
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 160},
      {2, "solar energy", "www.energy.gov", 220},
      {5, "solar system", "www.nasa.gov", 90},
      {5, "solar energy", "www.nasa.gov", 140},
      {3, "sun", "www.thesun.co.uk", 100},
      {3, "sun daily uk", "www.thesun.co.uk", 150},
      {6, "sun daily uk", "www.thesun.co.uk", 110},
      {6, "uk news", "www.thesun.co.uk", 170},
  };
}

SuggestionRequest ProfilerRequest(const std::string& query,
                                  UserId user = kNoUser) {
  SuggestionRequest request;
  request.query = query;
  request.timestamp = 400;
  request.user = user;
  return request;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "pqsda_profiler_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

// Sums the durations of every span named `name` in the trace tree.
int64_t SpanDurationUs(const obs::SpanNode& node, const std::string& name) {
  int64_t total = node.name == name ? node.duration_us() : 0;
  for (const auto& child : node.children) {
    total += SpanDurationUs(*child, name);
  }
  return total;
}

// |a - b| within 30% of the larger plus an absolute floor — wall clocks
// bracketing the same block from slightly different nesting depths.
void ExpectReconciled(int64_t profiler_us, int64_t trace_us,
                      const std::string& label) {
  const int64_t diff = profiler_us > trace_us ? profiler_us - trace_us
                                              : trace_us - profiler_us;
  const int64_t larger = std::max(profiler_us, trace_us);
  EXPECT_LE(diff, larger * 3 / 10 + 3000)
      << label << ": profiler=" << profiler_us << "us trace=" << trace_us
      << "us";
}

// The acceptance test of the attribution tentpole: per-stage totals in the
// profiler's window must reconcile with the same requests' SuggestStats
// traces — identical counts, identical work units, and wall time within
// tolerance of the trace spans bracketing the same code.
TEST(ProfilerReconciliationTest, ProfilezTotalsMatchSuggestStats) {
  StageProfiler& profiler = StageProfiler::Install({});

  PqsdaEngineConfig config;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 10;
  config.upm.hyper_rounds = 1;
  config.cache_capacity = 0;  // no cache stage in this reconciliation
  auto engine = PqsdaEngine::Build(ProfilerLog(), config);
  ASSERT_TRUE(engine.ok());

  const std::vector<std::string> queries = {"sun", "solar energy",
                                            "sun java"};
  constexpr size_t kRequests = 12;
  int64_t trace_request_us = 0;
  int64_t trace_expansion_us = 0;
  int64_t trace_solve_us = 0;
  int64_t trace_selection_us = 0;
  int64_t trace_personalization_us = 0;
  uint64_t walk_steps = 0;
  uint64_t solve_iterations = 0;
  uint64_t candidates_scored = 0;
  uint64_t personalized = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    SuggestStats stats;
    auto result = (*engine)->Suggest(
        ProfilerRequest(queries[i % queries.size()], /*user=*/1), 5, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    trace_request_us += stats.total_us();
    trace_expansion_us += SpanDurationUs(stats.trace, "expansion");
    trace_solve_us += SpanDurationUs(stats.trace, "regularization_solve");
    trace_selection_us += SpanDurationUs(stats.trace, "hitting_time_selection");
    trace_personalization_us += SpanDurationUs(stats.trace, "personalization");
    walk_steps += stats.expansion.walk_steps;
    solve_iterations += stats.solve.iterations;
    candidates_scored += stats.candidates_scored;
    if (stats.personalized) ++personalized;
  }
  ASSERT_EQ(personalized, kRequests);  // user 1 is known: the rerank ran

  StageProfiler::Snapshot snap = profiler.SnapshotOver(300 * kSecond);

  // Counts: one request bracket per Suggest, one scope per stage per
  // request, all on the full rung.
  EXPECT_EQ(snap.total[Idx(ProfileStage::kRequest)].count, kRequests);
  EXPECT_EQ(snap.per_rung[0][Idx(ProfileStage::kRequest)].count, kRequests);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kExpansion)].count, kRequests);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kSolve)].count, kRequests);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kSelection)].count, kRequests);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kPersonalization)].count, kRequests);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kCache)].count, 0u);

  // Work units: exactly the counters the stats structs reported.
  EXPECT_EQ(snap.total[Idx(ProfileStage::kExpansion)].work, walk_steps);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kSolve)].work, solve_iterations);
  EXPECT_EQ(snap.total[Idx(ProfileStage::kSelection)].work,
            candidates_scored);
  EXPECT_GT(snap.total[Idx(ProfileStage::kPersonalization)].work, 0u);

  // Wall time: the profiler's scopes and the trace spans bracket the same
  // blocks.
  ExpectReconciled(snap.total[Idx(ProfileStage::kRequest)].wall_ns / 1000,
                   trace_request_us, "request");
  ExpectReconciled(snap.total[Idx(ProfileStage::kExpansion)].wall_ns / 1000,
                   trace_expansion_us, "expansion");
  ExpectReconciled(snap.total[Idx(ProfileStage::kSolve)].wall_ns / 1000,
                   trace_solve_us, "solve");
  ExpectReconciled(snap.total[Idx(ProfileStage::kSelection)].wall_ns / 1000,
                   trace_selection_us, "selection");
  ExpectReconciled(
      snap.total[Idx(ProfileStage::kPersonalization)].wall_ns / 1000,
      trace_personalization_us, "personalization");

  // The stage scopes nest inside the request bracket, so their attributed
  // wall can never exceed it (the difference is the "self" leaf).
  const int64_t attributed =
      snap.total[Idx(ProfileStage::kExpansion)].wall_ns +
      snap.total[Idx(ProfileStage::kSolve)].wall_ns +
      snap.total[Idx(ProfileStage::kSelection)].wall_ns +
      snap.total[Idx(ProfileStage::kPersonalization)].wall_ns;
  EXPECT_LE(attributed,
            snap.total[Idx(ProfileStage::kRequest)].wall_ns + 1'000'000);

  // The rendered /profilez tree carries the same rung and stages.
  const std::string json = profiler.ProfilezJson(300 * kSecond);
  EXPECT_NE(json.find("\"name\":\"rung_full\""), std::string::npos);
  for (const char* stage :
       {"expansion", "solve", "selection", "personalization", "self"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(stage) + "\""),
              std::string::npos)
        << stage;
  }
  EXPECT_NE(json.find("\"count\":" + std::to_string(kRequests)),
            std::string::npos);
}

// ----------------------------------------------- exemplars ----

// Every "request_id":N inside the "exemplars" array of a /statusz body.
std::vector<uint64_t> ExemplarIds(const std::string& statusz) {
  std::vector<uint64_t> ids;
  size_t begin = statusz.find("\"exemplars\":[");
  if (begin == std::string::npos) return ids;
  size_t end = statusz.find(']', begin);
  std::string section = statusz.substr(begin, end - begin);
  const std::string needle = "\"request_id\":";
  size_t pos = 0;
  while ((pos = section.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    ids.push_back(std::strtoull(section.c_str() + pos, nullptr, 10));
  }
  return ids;
}

TEST(ExemplarTest, ExemplarIdsResolveToTracezOrRequestLog) {
  FakeClock clock;
  obs::ServingTelemetryOptions options;
  options.window = clock.Options(kSecond, /*epochs=*/512);
  options.trace_sample_every = 1;  // every request traced
  obs::ServingTelemetry& telemetry = obs::ServingTelemetry::Install(options);

  const std::string log_path = TempPath("exemplar");
  obs::RequestLogOptions log_options;
  log_options.path = log_path;
  log_options.sample_every = 1;  // every request logged
  auto opened = obs::RequestLog::Open(log_options);
  ASSERT_TRUE(opened.ok());
  telemetry.AttachRequestLog(std::move(opened).value());

  PqsdaEngineConfig config;
  config.personalize = false;
  config.cache_capacity = 0;
  auto engine = PqsdaEngine::Build(ProfilerLog(), config);
  ASSERT_TRUE(engine.ok());

  for (int i = 0; i < 10; ++i) {
    auto result =
        (*engine)->Suggest(ProfilerRequest(i % 2 == 0 ? "sun" : "sun java"), 5);
    ASSERT_TRUE(result.ok());
  }
  telemetry.request_log()->Flush();

  const std::string statusz = telemetry.StatuszJson();
  ASSERT_NE(statusz.find("\"exemplars\":["), std::string::npos);
  const std::vector<uint64_t> ids = ExemplarIds(statusz);
  ASSERT_FALSE(ids.empty());

  const std::string tracez = telemetry.TracezJson();
  std::stringstream log_contents;
  log_contents << std::ifstream(log_path).rdbuf();
  const std::string log_text = log_contents.str();

  // Every exemplar must be an actual request, findable in at least one of
  // the two debugging surfaces it is meant to link to.
  for (uint64_t id : ids) {
    const std::string needle = "\"request_id\":" + std::to_string(id) + ",";
    const bool in_tracez = tracez.find(needle) != std::string::npos;
    const bool in_log = log_text.find(needle) != std::string::npos;
    EXPECT_TRUE(in_tracez || in_log) << "exemplar id " << id;
  }

  // The exemplar entries carry the fields the /statusz reader pivots on.
  EXPECT_NE(statusz.find("\"le\":"), std::string::npos);
  EXPECT_NE(statusz.find("\"latency_us\":"), std::string::npos);
  EXPECT_NE(statusz.find("\"age_sec\":"), std::string::npos);
  std::remove(log_path.c_str());
}

// ------------------------------------------- SLO burn rate ----

// Drives the shed-rate SLO through its whole alert lifecycle at /alertz,
// with load shedding forced deterministically through the fault injector's
// queue-depth override and time moved by the fake clock:
//   healthy (good traffic) -> burning (shed storm trips both windows)
//   -> resolved (fast window clean, slow window still remembers)
//   -> healthy (slow window clean too).
TEST(SloLifecycleTest, ShedStormTripsAndResolvesAtAlertz) {
  FaultInjector& injector = FaultInjector::Default();
  injector.Reset();

  FakeClock clock;
  obs::ServingTelemetryOptions options;
  options.window = clock.Options(5 * kSecond, /*epochs=*/256);
  obs::ServingTelemetry& telemetry = obs::ServingTelemetry::Install(options);

  auto specs = obs::ParseSloSpecs("shed_rate:0.9");
  ASSERT_TRUE(specs.ok());
  telemetry.ConfigureSlos(std::move(*specs));
  ASSERT_NE(telemetry.slo(), nullptr);

  obs::HttpExporter exporter;
  telemetry.RegisterEndpoints(&exporter);
  ASSERT_TRUE(exporter.Start(0).ok());

  PqsdaEngineConfig config;
  config.personalize = false;
  config.cache_capacity = 0;
  config.robustness.shed_queue_depth = 4;
  auto engine = PqsdaEngine::Build(ProfilerLog(), config);
  ASSERT_TRUE(engine.ok());

  auto serve = [&](int n, bool expect_shed) {
    for (int i = 0; i < n; ++i) {
      auto result = (*engine)->Suggest(ProfilerRequest("sun"), 5);
      if (expect_shed) {
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
      } else {
        ASSERT_TRUE(result.ok());
      }
    }
  };
  auto scrape_alertz = [&] {
    int status = 0;
    auto body = obs::HttpGet(exporter.port(), "/alertz", &status);
    EXPECT_TRUE(body.ok());
    EXPECT_EQ(status, 200);
    return body.ok() ? *body : std::string();
  };

  // Phase 1 — good traffic only: healthy, zero burn.
  serve(20, /*expect_shed=*/false);
  std::string alertz = scrape_alertz();
  EXPECT_NE(alertz.find("\"name\":\"shed_rate\""), std::string::npos);
  EXPECT_NE(alertz.find("\"state\":\"healthy\""), std::string::npos);
  EXPECT_NE(alertz.find("\"trips\":0"), std::string::npos);

  // Phase 2 — forced pool saturation sheds everything: 20 of 40 requests
  // bad in both windows, burn = 0.5/0.1 = 5 > threshold 4 -> burning.
  injector.SetValue(faults::kQueueDepth, 1000);
  serve(20, /*expect_shed=*/true);
  injector.Reset();
  alertz = scrape_alertz();
  EXPECT_NE(alertz.find("\"state\":\"burning\""), std::string::npos);
  EXPECT_NE(alertz.find("\"trips\":1"), std::string::npos);
  EXPECT_NE(alertz.find("\"from\":\"healthy\",\"to\":\"burning\""),
            std::string::npos);

  // Phase 3 — 70s later the fast window holds only fresh good traffic
  // (burn 0 < 1) while the slow window still remembers the storm:
  // resolved, not yet healthy.
  clock.Advance(70 * kSecond);
  serve(20, /*expect_shed=*/false);
  alertz = scrape_alertz();
  EXPECT_NE(alertz.find("\"state\":\"resolved\""), std::string::npos);
  EXPECT_NE(alertz.find("\"from\":\"burning\",\"to\":\"resolved\""),
            std::string::npos);

  // Phase 4 — once the storm ages past the slow window too, the alert
  // closes completely.
  clock.Advance(310 * kSecond);
  serve(20, /*expect_shed=*/false);
  alertz = scrape_alertz();
  EXPECT_NE(alertz.find("\"state\":\"healthy\""), std::string::npos);
  EXPECT_NE(alertz.find("\"from\":\"resolved\",\"to\":\"healthy\""),
            std::string::npos);

  // The compact SLO section rides along in /statusz.
  const std::string statusz = telemetry.StatuszJson();
  EXPECT_NE(statusz.find("\"slo\":["), std::string::npos);
  EXPECT_NE(statusz.find("\"fast_burn\":"), std::string::npos);

  exporter.Stop();
  injector.Reset();
}

TEST(SloSpecParsingTest, AcceptsValidAndRejectsMalformed) {
  auto avail = obs::ParseSloSpec("availability:0.999");
  ASSERT_TRUE(avail.ok());
  EXPECT_EQ(avail->kind, obs::SloKind::kAvailability);
  EXPECT_DOUBLE_EQ(avail->objective, 0.999);

  auto latency = obs::ParseSloSpec("latency:0.99:200000");
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ(latency->kind, obs::SloKind::kLatency);
  EXPECT_DOUBLE_EQ(latency->latency_threshold_us, 200000.0);

  auto list = obs::ParseSloSpecs("availability:0.999,shed_rate:0.95");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);

  EXPECT_FALSE(obs::ParseSloSpec("").ok());
  EXPECT_FALSE(obs::ParseSloSpec("throughput:0.9").ok());
  EXPECT_FALSE(obs::ParseSloSpec("availability:1.5").ok());
  EXPECT_FALSE(obs::ParseSloSpec("latency:0.99").ok());  // threshold missing
  EXPECT_FALSE(obs::ParseSloSpec("availability:0.9:7").ok());
  EXPECT_TRUE(obs::ParseSloSpecs("")->empty());
}

TEST(SloEngineTest, UnconfiguredAlertzIsEmptyButWellFormed) {
  obs::ServingTelemetryOptions options;
  obs::ServingTelemetry telemetry(options);
  EXPECT_EQ(telemetry.slo(), nullptr);
  EXPECT_EQ(telemetry.AlertzJson(), "{\"slos\":[],\"transitions\":[]}");
}

}  // namespace
}  // namespace pqsda
