// Deterministic fault-injection harness for the overload-hardened serving
// path: deadlines, cancellation, load shedding and the degradation ladder.
// Every fault here is injected at an exact named point (FaultInjector) on a
// fake clock — no sleeps, no wall-clock races — so "the deadline expires on
// the 2nd solver iteration" is a reproducible statement.
//
// The invariants under test, across the whole {stage x fault x rung} matrix:
//   - a faulted request returns a well-formed Status (kDeadlineExceeded /
//     kCancelled / kUnavailable / kNotFound), never a partial suggestion
//     list and never a crash;
//   - a reused SuggestStats never carries a previous request's numbers out
//     of any fault path;
//   - interruption is honored within one iteration-check granularity.
//
// This file also carries the deadline-storm batch test the TSAN verify step
// of run_benches.sh re-runs, and the regression test for silently-accepted
// non-convergence (now only the truncated rung accepts it, loudly).

#include <atomic>
#include <deque>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "core/pqsda_engine.h"
#include "core/sharded_engine.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/sliding_window.h"
#include "obs/telemetry.h"
#include "solver/linear_solvers.h"

namespace pqsda {
namespace {

constexpr int64_t kMs = 1'000'000;
constexpr int64_t kSec = 1'000'000'000;

// Same 14-record log the serving suite uses: three topic clusters around
// "sun" plus per-user click history.
std::vector<QueryLogRecord> FaultLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 150},
      {1, "java download", "www.java.com", 200},
      {4, "sun java", "www.java.com", 100},
      {4, "java download", "java.sun.com", 130},
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 160},
      {2, "solar energy", "www.energy.gov", 220},
      {5, "solar system", "www.nasa.gov", 90},
      {5, "solar energy", "www.nasa.gov", 140},
      {3, "sun", "www.thesun.co.uk", 100},
      {3, "sun daily uk", "www.thesun.co.uk", 150},
      {6, "sun daily uk", "www.thesun.co.uk", 110},
      {6, "uk news", "www.thesun.co.uk", 170},
  };
}

std::unique_ptr<PqsdaEngine> BuildFaultEngine(
    RobustnessOptions robustness = {}, size_t cache_capacity = 0) {
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 10;
  config.upm.hyper_rounds = 1;
  config.cache_capacity = cache_capacity;
  config.robustness = robustness;
  auto built = PqsdaEngine::Build(FaultLog(), config);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

SuggestionRequest FaultRequest(const std::string& query,
                               UserId user = kNoUser) {
  SuggestionRequest request;
  request.query = query;
  request.timestamp = 400;
  request.user = user;
  return request;
}

// A stats struct full of junk: after any request — served, shed, faulted —
// none of these sentinels may survive.
SuggestStats PoisonedStats() {
  SuggestStats stats;
  stats.compact_size = 999;
  stats.hitting_rounds = 999;
  stats.candidates_scored = 999;
  stats.suggestions_returned = 999;
  stats.personalized = true;
  stats.shed = true;
  stats.degradation_rung = 7;
  stats.solve.iterations = 999;
  stats.solve.relative_residual = 123.0;
  stats.solve.converged = true;
  return stats;
}

void ExpectStatsReset(const SuggestStats& stats) {
  EXPECT_NE(stats.compact_size, 999u);
  EXPECT_NE(stats.hitting_rounds, 999u);
  EXPECT_NE(stats.candidates_scored, 999u);
  EXPECT_NE(stats.suggestions_returned, 999u);
  EXPECT_NE(stats.degradation_rung, 7u);
  EXPECT_NE(stats.solve.iterations, 999u);
}

// Resets the process-wide injector around every test so armed faults and
// hit counts never leak between tests (the suite runs in one process).
class FaultInjectionTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::Default().Reset(); }
  void TearDown() override { FaultInjector::Default().Reset(); }
};

// ------------------------------------------------- CancelToken unit ----

TEST_F(FaultInjectionTest, CancelTokenDefaultIsUnbounded) {
  CancelToken token;
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_EQ(token.RemainingNanos(), CancelToken::kNoDeadline);
  EXPECT_TRUE(token.Check().ok());
}

TEST_F(FaultInjectionTest, CancelTokenDeadlineOnFakeClock) {
  FaultInjector& injector = FaultInjector::Default();
  injector.SetClock(1000 * kSec);
  CancelToken token(injector.ClockFn());
  token.SetDeadlineAfter(10 * kMs);
  EXPECT_TRUE(token.Check().ok());
  EXPECT_EQ(token.RemainingNanos(), 10 * kMs);

  injector.AdvanceClock(9 * kMs);
  EXPECT_TRUE(token.Check().ok());
  injector.AdvanceClock(2 * kMs);
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, CancellationWinsOverExpiry) {
  FaultInjector& injector = FaultInjector::Default();
  injector.SetClock(0);
  CancelToken token(injector.ClockFn());
  token.SetDeadlineAfter(1);
  injector.AdvanceClock(5 * kSec);
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

// ----------------------------------------------- FaultInjector unit ----

TEST_F(FaultInjectionTest, ArmTriggersOnExactHit) {
  FaultInjector& injector = FaultInjector::Default();
  CancelToken token;
  FaultAction action;
  action.at_hit = 3;
  action.cancel = &token;
  injector.Arm("unit.point", action);

  injector.Hit("unit.point");
  injector.Hit("unit.point");
  EXPECT_FALSE(token.cancelled());
  injector.Hit("unit.point");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(injector.Hits("unit.point"), 3u);
}

TEST_F(FaultInjectionTest, ValueOverrideAndReset) {
  FaultInjector& injector = FaultInjector::Default();
  EXPECT_EQ(injector.Value("unit.value", 42), 42);
  injector.SetValue("unit.value", 7);
  EXPECT_EQ(injector.Value("unit.value", 42), 7);
  injector.Reset();
  EXPECT_EQ(injector.Value("unit.value", 42), 42);
  EXPECT_EQ(injector.Hits("unit.value"), 0u);
}

// ------------------------------------------------ solver interrupt ----

TEST_F(FaultInjectionTest, PreCancelledTokenStopsSolveBeforeFirstSweep) {
  auto a = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 4.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 4.0}});
  std::vector<double> b = {1.0, 2.0};
  CancelToken token;
  token.Cancel();
  SolverOptions options;
  options.cancel = &token;
  std::vector<double> x;
  auto result = GaussSeidelSolve(a, b, x, options);
  EXPECT_EQ(result.interrupt.code(), StatusCode::kCancelled);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
}

// ------------------------------------------- {stage x fault x rung} ----

struct MatrixCase {
  const char* stage;    // injection point to arm
  uint64_t at_hit;      // which hit triggers the fault
  size_t rung;          // engine min_rung the case runs at
};

// Every pipeline stage that polls the token, at every ladder rung where the
// stage still runs. kExpansionDone fires once per request; the iteration /
// round points get hit 2 so the fault lands mid-stream.
const MatrixCase kMatrix[] = {
    {faults::kExpansionDone, 1, 0},
    {faults::kExpansionDone, 1, 1},
    {faults::kExpansionDone, 1, 2},
    {faults::kSolverIteration, 2, 0},
    {faults::kSolverIteration, 2, 1},
    {faults::kHittingIteration, 2, 0},
    {faults::kHittingIteration, 2, 1},
    {faults::kHittingRound, 2, 0},
    {faults::kHittingRound, 2, 1},
};

// One pass over the matrix per fault kind. The request runs with a 10s
// budget on the frozen fake clock, so the rung decision at admission is
// "plenty of budget" and the only thing that unwinds it is the injected
// fault at the armed point.
void RunFaultMatrix(bool deadline_fault) {
  FaultInjector& injector = FaultInjector::Default();
  for (const MatrixCase& c : kMatrix) {
    SCOPED_TRACE(std::string(c.stage) + " rung " + std::to_string(c.rung) +
                 (deadline_fault ? " deadline" : " cancel"));
    injector.Reset();
    injector.SetClock(0);

    RobustnessOptions robustness;
    robustness.min_rung = c.rung;
    auto engine = BuildFaultEngine(robustness);

    CancelToken token(injector.ClockFn());
    token.SetDeadlineAfter(10 * kSec);
    FaultAction action;
    action.at_hit = c.at_hit;
    if (deadline_fault) {
      action.advance_clock_ns = 20 * kSec;
    } else {
      action.cancel = &token;
    }
    injector.Arm(c.stage, action);

    SuggestionRequest request = FaultRequest("sun", /*user=*/1);
    request.cancel = &token;
    SuggestStats stats = PoisonedStats();
    auto result = engine->Suggest(request, 5, &stats);

    // Never a partial list: the faulted request carries a status, not a
    // truncated answer.
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), deadline_fault
                                          ? StatusCode::kDeadlineExceeded
                                          : StatusCode::kCancelled);
    // The reused stats struct reflects this request only.
    ExpectStatsReset(stats);
    EXPECT_EQ(stats.degradation_rung, c.rung);
    EXPECT_FALSE(stats.shed);
    EXPECT_FALSE(stats.personalized);
    EXPECT_EQ(stats.suggestions_returned, 0u);
  }
}

TEST_F(FaultInjectionTest, DeadlineExpiryAtEveryStageAndRung) {
  RunFaultMatrix(/*deadline_fault=*/true);
}

TEST_F(FaultInjectionTest, CancellationAtEveryStageAndRung) {
  RunFaultMatrix(/*deadline_fault=*/false);
}

// Acceptance criterion: a deadline that hits zero mid-solve unwinds within
// one iteration-check granularity — the solver takes no further sweep after
// the poll that observed expiry.
TEST_F(FaultInjectionTest, MidSolveExpiryStopsWithinOneIterationCheck) {
  FaultInjector& injector = FaultInjector::Default();
  injector.SetClock(0);
  auto engine = BuildFaultEngine();

  CancelToken token(injector.ClockFn());
  token.SetDeadlineAfter(10 * kSec);
  FaultAction action;
  action.at_hit = 3;  // clock jumps at the top of solver iteration 3
  action.advance_clock_ns = 20 * kSec;
  injector.Arm(faults::kSolverIteration, action);

  SuggestionRequest request = FaultRequest("sun");
  request.cancel = &token;
  auto result = engine->Suggest(request, 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The poll at the very iteration that advanced the clock observed the
  // expiry: the solver never started another sweep.
  EXPECT_EQ(injector.Hits(faults::kSolverIteration), 3u);
}

// A clock jump at admission shapes the budget the ladder reads: the request
// degrades (here all the way to cache-only) instead of erroring.
TEST_F(FaultInjectionTest, BudgetExhaustedAtAdmissionDegradesToCacheOnly) {
  FaultInjector& injector = FaultInjector::Default();
  injector.SetClock(0);
  auto engine = BuildFaultEngine({}, /*cache_capacity=*/16);

  // Warm the cache with a full-quality answer.
  SuggestStats stats;
  auto warm = engine->Suggest(FaultRequest("sun"), 5, &stats);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(stats.degradation_rung, 0u);

  // Zero the hit counts the warm request accumulated (Reset keeps the
  // clock), then arm the admission-time clock jump.
  injector.Reset();
  injector.SetClock(0);
  FaultAction action;
  action.advance_clock_ns = 10 * kSec - 1 * kMs;  // leaves 1ms of budget
  injector.Arm(faults::kAdmission, action);

  CancelToken token(injector.ClockFn());
  token.SetDeadlineAfter(10 * kSec);
  SuggestionRequest request = FaultRequest("sun");
  request.cancel = &token;
  SuggestStats degraded = PoisonedStats();
  auto hit = engine->Suggest(request, 5, &degraded);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, *warm);  // cache-only rung serves the cached full answer
  EXPECT_EQ(degraded.degradation_rung, 3u);

  // The same starved budget on an uncached query is a fast NotFound.
  injector.Reset();
  injector.SetClock(0);
  injector.Arm(faults::kAdmission, action);
  CancelToken token2(injector.ClockFn());
  token2.SetDeadlineAfter(10 * kSec);
  SuggestionRequest miss = FaultRequest("solar energy");
  miss.cancel = &token2;
  SuggestStats miss_stats = PoisonedStats();
  auto result = engine->Suggest(miss, 5, &miss_stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(miss_stats.degradation_rung, 3u);
  ExpectStatsReset(miss_stats);
}

// ------------------------------------------------------ load shedding ----

TEST_F(FaultInjectionTest, QueueDepthOverLimitShedsWithUnavailable) {
  FaultInjector& injector = FaultInjector::Default();
  RobustnessOptions robustness;
  robustness.shed_queue_depth = 4;
  auto engine = BuildFaultEngine(robustness);
  obs::Counter& shed_total =
      obs::MetricsRegistry::Default().GetCounter("pqsda.robust.shed_total");
  const uint64_t shed_before = shed_total.Value();

  // Fake pool saturation: no actual storm needed.
  injector.SetValue(faults::kQueueDepth, 1000);
  SuggestStats stats = PoisonedStats();
  auto result = engine->Suggest(FaultRequest("sun"), 5, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(stats.shed);
  ExpectStatsReset(stats);
  EXPECT_EQ(stats.suggestions_returned, 0u);
  EXPECT_EQ(shed_total.Value(), shed_before + 1);

  // Back under the limit, the same request is served.
  injector.SetValue(faults::kQueueDepth, 2);
  auto served = engine->Suggest(FaultRequest("sun"), 5, &stats);
  EXPECT_TRUE(served.ok());
  EXPECT_FALSE(stats.shed);
}

TEST_F(FaultInjectionTest, WindowedP95OverLimitShedsWithUnavailable) {
  FaultInjector& injector = FaultInjector::Default();
  RobustnessOptions robustness;
  robustness.shed_p95_us = 50'000.0;
  auto engine = BuildFaultEngine(robustness);

  injector.SetValue(faults::kP95Us, 400'000);
  auto result = engine->Suggest(FaultRequest("sun"), 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);

  injector.SetValue(faults::kP95Us, 1'000);
  EXPECT_TRUE(engine->Suggest(FaultRequest("sun"), 5).ok());
}

// --------------------------------------------------- ladder behavior ----

TEST_F(FaultInjectionTest, WalkOnlyRungServesBoundedDeterministicAnswer) {
  RobustnessOptions robustness;
  robustness.min_rung = 2;
  auto engine = BuildFaultEngine(robustness);

  SuggestStats stats = PoisonedStats();
  auto first = engine->Suggest(FaultRequest("sun", /*user=*/1), 5, &stats);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->empty());
  EXPECT_EQ(stats.degradation_rung, 2u);
  EXPECT_EQ(stats.hitting_rounds, 0u);     // Algorithm 1 skipped
  EXPECT_EQ(stats.solve.iterations, 0u);   // Eq. 15 solve skipped
  EXPECT_FALSE(stats.personalized);        // rerank skipped on this rung

  auto second = engine->Suggest(FaultRequest("sun", /*user=*/1), 5);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

// Regression: SolveRegularization must not silently accept a non-converged
// iterate. The full rung errors (NotConverged); only the truncated rung
// serves it — and then the outcome stays visible in stats and metrics.
TEST_F(FaultInjectionTest, TruncatedRungServesNonConvergedSolveLoudly) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& nonconverged =
      reg.GetCounter("pqsda.solver.nonconverged_total");
  obs::Counter& served =
      reg.GetCounter("pqsda.robust.nonconverged_served_total");

  RobustnessOptions starved;
  starved.min_rung = 1;
  starved.truncated_max_iterations = 1;   // cannot converge in one sweep
  starved.truncated_tolerance = 1e-14;
  auto truncated = BuildFaultEngine(starved);

  const uint64_t nonconverged_before = nonconverged.Value();
  const uint64_t served_before = served.Value();
  SuggestStats stats = PoisonedStats();
  auto result = truncated->Suggest(FaultRequest("sun"), 5, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->empty());
  EXPECT_EQ(stats.degradation_rung, 1u);
  EXPECT_FALSE(stats.solve.converged);    // loud in per-request stats
  EXPECT_EQ(stats.solve.iterations, 1u);
  EXPECT_EQ(nonconverged.Value(), nonconverged_before + 1);  // loud counter
  EXPECT_EQ(served.Value(), served_before + 1);

  // The same starvation at the full rung is an error, not a silent serve:
  // drive the full pipeline with the impossible solver budget by calling
  // the diversifier directly.
  auto full_engine = BuildFaultEngine();
  PqsdaDiversifierOptions hard = full_engine->diversifier().options();
  hard.regularization.solver_options.max_iterations = 1;
  hard.regularization.solver_options.tolerance = 1e-14;
  auto direct = full_engine->diversifier().DiversifyWith(
      FaultRequest("sun"), 5, hard);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kNotConverged);
}

// Degraded answers must not poison the full-quality cache: a walk-only
// serve leaves no entry behind for the same key.
TEST_F(FaultInjectionTest, DegradedResultsAreNotCached) {
  FaultInjector& injector = FaultInjector::Default();
  injector.SetClock(0);
  auto engine = BuildFaultEngine({}, /*cache_capacity=*/16);

  // Budget in the walk-only band: remaining 10ms < walk_only_below_us.
  CancelToken token(injector.ClockFn());
  token.SetDeadlineAfter(10 * kMs);
  SuggestionRequest request = FaultRequest("sun");
  request.cancel = &token;
  SuggestStats stats;
  auto degraded = engine->Suggest(request, 5, &stats);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(stats.degradation_rung, 2u);

  // The follow-up full-budget request misses the cache and runs the full
  // pipeline (rung 0) — the degraded answer was not stored.
  SuggestStats full_stats;
  auto full = engine->Suggest(FaultRequest("sun"), 5, &full_stats);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full_stats.degradation_rung, 0u);
  EXPECT_GT(full_stats.hitting_rounds, 0u);  // pipeline actually ran
}

// ------------------------------------------------- negative cache ----

// A storm of lookups for an unknown query is absorbed by the negative
// cache: the first request runs the pipeline and records the NotFound,
// every repeat answers from the remembered verdict without invoking the
// engine again.
TEST_F(FaultInjectionTest, NegativeCacheAbsorbsNotFoundStorm) {
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 10;
  config.upm.hyper_rounds = 1;
  config.cache_capacity = 16;
  config.negative_cache_capacity = 16;
  auto built = PqsdaEngine::Build(FaultLog(), config);
  ASSERT_TRUE(built.ok());
  std::unique_ptr<PqsdaEngine> engine = std::move(built).value();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& neg_hits = reg.GetCounter("pqsda.cache.negative_hits_total");
  obs::Counter& neg_inserts =
      reg.GetCounter("pqsda.cache.negative_insertions_total");
  const uint64_t hits0 = neg_hits.Value();
  const uint64_t inserts0 = neg_inserts.Value();

  SuggestStats stats = PoisonedStats();
  auto first = engine->Suggest(FaultRequest("quantum flux capacitor"), 5,
                               &stats);
  EXPECT_EQ(first.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(stats.negative_cache_hit);
  EXPECT_EQ(neg_inserts.Value(), inserts0 + 1);

  for (int i = 0; i < 8; ++i) {
    SuggestStats storm = PoisonedStats();
    auto repeat = engine->Suggest(FaultRequest("quantum flux capacitor"), 5,
                                  &storm);
    EXPECT_EQ(repeat.status().code(), StatusCode::kNotFound);
    EXPECT_TRUE(storm.negative_cache_hit);
    EXPECT_EQ(storm.hitting_rounds, 0u);  // the pipeline never ran
  }
  EXPECT_EQ(neg_hits.Value(), hits0 + 8);
  EXPECT_EQ(neg_inserts.Value(), inserts0 + 1);  // remembered once
}

// An ingested delta can make a remembered-NotFound query known. The
// negative entry is stamped with the owning component's generation, so the
// rebuild that absorbs the delta grades it stale: the entry is erased
// (counted), the pipeline re-runs, and the query now serves.
TEST_F(FaultInjectionTest, NegativeCacheInvalidatedWhenIngestMakesQueryKnown) {
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 10;
  config.upm.hyper_rounds = 1;
  config.cache_capacity = 16;
  config.negative_cache_capacity = 16;
  config.cache_delta_aware = true;
  config.ingest.rebuild_min_records = SIZE_MAX;  // rebuilds only on demand
  auto built = PqsdaEngine::Build(FaultLog(), config);
  ASSERT_TRUE(built.ok());
  std::unique_ptr<PqsdaEngine> engine = std::move(built).value();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& neg_invalidations =
      reg.GetCounter("pqsda.cache.negative_invalidations_total");

  const std::string query = "meteor shower";  // unknown at build time
  auto miss = engine->Suggest(FaultRequest(query), 5);
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  SuggestStats storm;
  auto absorbed = engine->Suggest(FaultRequest(query), 5, &storm);
  EXPECT_EQ(absorbed.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(storm.negative_cache_hit);

  std::vector<QueryLogRecord> delta = {
      {7, "meteor shower", "www.nasa.gov", 500},
      {8, "meteor shower", "www.nasa.gov", 510},
      {7, "solar system", "www.nasa.gov", 520}};
  for (QueryLogRecord& record : delta) {
    ASSERT_TRUE(engine->Ingest(std::move(record)).ok());
  }
  ASSERT_TRUE(engine->index_manager().RebuildNow().ok());

  const uint64_t invalidations0 = neg_invalidations.Value();
  SuggestStats after;
  auto known = engine->Suggest(FaultRequest(query), 5, &after);
  ASSERT_TRUE(known.ok()) << known.status().ToString();
  EXPECT_FALSE(after.negative_cache_hit);
  EXPECT_FALSE(known->empty());
  // The stale entry was erased on lookup, not silently bypassed.
  EXPECT_EQ(neg_invalidations.Value(), invalidations0 + 1);
}

// A NotFound served on a degraded rung proves nothing about the query —
// the walk-only path may simply not have looked hard enough — so it must
// never be remembered. Only the full rung's verdict is cached.
TEST_F(FaultInjectionTest, DegradedNotFoundIsNeverCachedNegatively) {
  FaultInjector& injector = FaultInjector::Default();
  injector.SetClock(0);
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 10;
  config.upm.hyper_rounds = 1;
  config.cache_capacity = 16;
  config.negative_cache_capacity = 16;
  auto built = PqsdaEngine::Build(FaultLog(), config);
  ASSERT_TRUE(built.ok());
  std::unique_ptr<PqsdaEngine> engine = std::move(built).value();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& neg_inserts =
      reg.GetCounter("pqsda.cache.negative_insertions_total");
  const uint64_t inserts0 = neg_inserts.Value();

  // Budget in the walk-only band: the degraded NotFound is not recorded.
  CancelToken token(injector.ClockFn());
  token.SetDeadlineAfter(10 * kMs);
  SuggestionRequest request = FaultRequest("quantum flux capacitor");
  request.cancel = &token;
  SuggestStats stats;
  auto degraded = engine->Suggest(request, 5, &stats);
  EXPECT_EQ(degraded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(stats.degradation_rung, 2u);
  EXPECT_EQ(neg_inserts.Value(), inserts0);

  // The full-budget request is a genuine miss — nothing was remembered —
  // and only this full-rung verdict enters the negative cache.
  SuggestStats full;
  auto confirmed = engine->Suggest(FaultRequest("quantum flux capacitor"), 5,
                                   &full);
  EXPECT_EQ(confirmed.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(full.negative_cache_hit);
  EXPECT_EQ(neg_inserts.Value(), inserts0 + 1);
}

// ------------------------------------------------- TSAN deadline storm ----

// Batched serving under a storm of tight real-clock deadlines and
// mid-flight cancellations from another thread. Run under ThreadSanitizer
// by run_benches.sh: the assertions here are weak (any well-formed outcome
// is fine) — the point is that tokens, fault points, workspaces and the
// ladder race-free under concurrent cancellation.
TEST_F(FaultInjectionTest, DeadlineStormUnderBatchStaysWellFormed) {
  RobustnessOptions robustness;
  auto engine = BuildFaultEngine(robustness, /*cache_capacity=*/32);

  const char* queries[] = {"sun", "sun java", "solar energy", "solar system",
                           "java download", "sun daily uk"};
  std::vector<SuggestionRequest> requests;
  std::deque<CancelToken> tokens;
  for (int i = 0; i < 48; ++i) {
    SuggestionRequest request =
        FaultRequest(queries[i % 6], i % 3 == 0 ? (i % 6) + 1 : kNoUser);
    tokens.emplace_back();  // real steady_clock tokens
    // A third get a deadline so tight it lands in a degraded rung or
    // expires mid-flight; the rest run unbounded and get cancelled (or
    // not) by the canceller thread below.
    if (i % 3 == 1) tokens.back().SetDeadlineAfter((i % 5) * kMs);
    request.cancel = &tokens.back();
    requests.push_back(std::move(request));
  }

  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    // Cancel every 4th token, racing the in-flight batch.
    for (size_t i = 0; i < tokens.size() && !stop.load(); i += 4) {
      tokens[i].Cancel();
      std::this_thread::yield();
    }
  });

  ThreadPool pool(4);
  auto results = engine->SuggestBatch(requests, 5, &pool);
  stop.store(true);
  canceller.join();

  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) continue;
    const StatusCode code = results[i].status().code();
    EXPECT_TRUE(code == StatusCode::kDeadlineExceeded ||
                code == StatusCode::kCancelled ||
                code == StatusCode::kNotFound ||
                code == StatusCode::kUnavailable)
        << "request " << i << ": " << results[i].status().ToString();
  }
}

// --------------------------------------- per-shard fault matrix ----

// The sharded scatter-gather coordinator under per-shard faults: one shard
// past its fetch deadline, one shard shedding, one shard mid-swap. The
// invariants: only the affected shard degrades (every other touched shard
// stays kShardFull), a partial merge is always loud (SuggestStats rungs +
// partial_merge + counters, never a cache fill), and a mid-swap holdback
// serves the *whole* previous build, not a mixed view.

std::unique_ptr<ShardedEngine> BuildShardedFaultEngine(
    size_t cache_capacity = 0) {
  PqsdaEngineConfig config;
  config.personalize = false;
  config.cache_capacity = cache_capacity;
  ShardedEngineOptions options;
  options.shards = 4;
  options.hot_row_min_degree = 0;  // strict ownership: faults must bite
  auto built = ShardedEngine::Build(FaultLog(), config, options);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

// A probe whose expansion crosses shards, plus one touched non-primary
// shard to play the victim. The 14-record log is one connected cluster, so
// such a probe always exists at 4 shards with strict ownership.
struct ShardedProbe {
  SuggestionRequest request;
  size_t victim = 0;
};

ShardedProbe FindCrossShardProbe(const ShardedEngine& engine) {
  const char* queries[] = {"sun",          "sun java",     "solar energy",
                           "solar system", "java download", "sun daily uk"};
  for (const char* q : queries) {
    SuggestStats stats;
    auto result = engine.Suggest(FaultRequest(q), 5, &stats);
    if (!result.ok() || stats.shards_touched < 2) continue;
    const size_t primary = engine.router().QueryShardOf(q);
    for (size_t s = 0; s < stats.shard_rungs.size(); ++s) {
      if (s != primary && stats.shard_rungs[s] == SuggestStats::kShardFull) {
        return {FaultRequest(q), s};
      }
    }
  }
  ADD_FAILURE() << "no cross-shard probe found";
  return {FaultRequest("sun"), 1};
}

TEST_F(FaultInjectionTest, ShardDeadlineDegradesOnlyThatShard) {
  auto engine = BuildShardedFaultEngine();
  const ShardedProbe probe = FindCrossShardProbe(*engine);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& deadline_total = reg.GetCounter(
      "pqsda.shard." + std::to_string(probe.victim) + ".deadline_total");
  obs::Counter& partial_total =
      reg.GetCounter("pqsda.sharded.partial_merges_total");
  const uint64_t deadline0 = deadline_total.Value();
  const uint64_t partial0 = partial_total.Value();

  FaultInjector::Default().SetValue(faults::kShardDeadlineShard,
                                    static_cast<int64_t>(probe.victim));
  SuggestStats stats;
  auto result = engine->Suggest(probe.request, 5, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Loud, and surgical: the victim carries kShardDeadline, everyone else
  // is untouched-or-full, the request-level rung is still kFull.
  EXPECT_TRUE(stats.partial_merge);
  EXPECT_EQ(stats.degradation_rung, 0u);
  EXPECT_EQ(stats.shard_rungs[probe.victim], SuggestStats::kShardDeadline);
  for (size_t s = 0; s < stats.shard_rungs.size(); ++s) {
    if (s == probe.victim) continue;
    EXPECT_TRUE(stats.shard_rungs[s] == SuggestStats::kShardFull ||
                stats.shard_rungs[s] == SuggestStats::kShardUntouched)
        << "shard " << s;
  }
  EXPECT_EQ(deadline_total.Value(), deadline0 + 1);
  EXPECT_EQ(partial_total.Value(), partial0 + 1);
}

TEST_F(FaultInjectionTest, ShardShedDegradesOnlyThatShard) {
  auto engine = BuildShardedFaultEngine();
  const ShardedProbe probe = FindCrossShardProbe(*engine);
  obs::Counter& degraded_total = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.shard." + std::to_string(probe.victim) + ".degraded_total");
  const uint64_t degraded0 = degraded_total.Value();

  FaultInjector::Default().SetValue(faults::kShardShedShard,
                                    static_cast<int64_t>(probe.victim));
  SuggestStats stats;
  auto result = engine->Suggest(probe.request, 5, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(stats.partial_merge);
  EXPECT_EQ(stats.shard_rungs[probe.victim], SuggestStats::kShardDegraded);
  EXPECT_EQ(degraded_total.Value(), degraded0 + 1);

  // With the fault cleared the same request merges fully again.
  FaultInjector::Default().Reset();
  SuggestStats clean;
  ASSERT_TRUE(engine->Suggest(probe.request, 5, &clean).ok());
  EXPECT_FALSE(clean.partial_merge);
}

TEST_F(FaultInjectionTest, ShardPartialMergeIsNeverCached) {
  auto engine = BuildShardedFaultEngine(/*cache_capacity=*/16);
  // Probe discovery serves requests — run it on a cache-less twin (same
  // records, same partition geometry) so this engine's cache stays cold.
  const ShardedProbe probe = FindCrossShardProbe(*BuildShardedFaultEngine());
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& hits = reg.GetCounter("pqsda.cache.hits_total");
  obs::Counter& misses = reg.GetCounter("pqsda.cache.misses_total");

  // Partial serve on a cold key: computed, served loudly, NOT stored.
  FaultInjector::Default().SetValue(faults::kShardShedShard,
                                    static_cast<int64_t>(probe.victim));
  const uint64_t hits0 = hits.Value();
  const uint64_t misses0 = misses.Value();
  SuggestStats stats;
  auto partial = engine->Suggest(probe.request, 5, &stats);
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(stats.partial_merge);
  EXPECT_EQ(misses.Value(), misses0 + 1);

  // Fault cleared: the same key must MISS (nothing was cached) and the
  // full merge then fills the cache for the third call.
  FaultInjector::Default().Reset();
  SuggestStats full;
  ASSERT_TRUE(engine->Suggest(probe.request, 5, &full).ok());
  EXPECT_FALSE(full.partial_merge);
  EXPECT_EQ(misses.Value(), misses0 + 2);
  EXPECT_EQ(hits.Value(), hits0);
  ASSERT_TRUE(engine->Suggest(probe.request, 5).ok());
  EXPECT_EQ(hits.Value(), hits0 + 1);
}

TEST_F(FaultInjectionTest, ShardAdmissionShedsAtPrimaryGateWithCleanStats) {
  PqsdaEngineConfig config;
  config.personalize = false;
  ShardedEngineOptions options;
  options.shards = 4;
  options.shard_queue_depth = 4;  // enable the per-shard queue gate
  auto built = ShardedEngine::Build(FaultLog(), config, options);
  ASSERT_TRUE(built.ok());
  auto& engine = *built;

  const SuggestionRequest request = FaultRequest("sun");
  const size_t primary = engine->router().QueryShardOf(request.query);
  obs::Counter& shed_total = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.shard." + std::to_string(primary) + ".shed_total");
  const uint64_t shed0 = shed_total.Value();

  // Overload exactly the primary shard's scoped queue-depth point: the
  // request sheds at its gate; a query homed on any other shard still
  // serves.
  FaultInjector::Default().SetValue(
      "shard." + std::to_string(primary) + ".queue_depth", 100);
  SuggestStats stats = PoisonedStats();
  auto shed = engine->Suggest(request, 5, &stats);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(stats.shed);
  ExpectStatsReset(stats);
  EXPECT_EQ(shed_total.Value(), shed0 + 1);

  for (const char* q :
       {"sun java", "solar energy", "solar system", "uk news"}) {
    if (engine->router().QueryShardOf(q) == primary) continue;
    EXPECT_TRUE(engine->Suggest(FaultRequest(q), 5).ok()) << q;
    break;
  }
}

// The p95 gate's live signal must be scoped to the controller's own
// latency window when one is wired — a per-shard gate reading process-wide
// latency would trip on every shard the moment one shard is slow.
TEST_F(FaultInjectionTest, AdmissionGatesOnItsOwnLatencyWindow) {
  obs::SlidingWindowHistogram slow;
  obs::SlidingWindowHistogram fast;
  for (int i = 0; i < 64; ++i) slow.Record(400'000.0);
  for (int i = 0; i < 64; ++i) fast.Record(1'000.0);

  AdmissionOptions options;
  options.max_p95_us = 50'000.0;
  options.latency = &slow;
  AdmissionController overloaded(options);
  EXPECT_EQ(overloaded.Admit().code(), StatusCode::kUnavailable);

  options.latency = &fast;
  AdmissionController healthy(options);
  EXPECT_TRUE(healthy.Admit().ok());
}

// Single-request serving executes on the calling thread and never enqueues
// on a lane, so the depth gate counts the wired in-flight counter on top of
// the pool's queue depth.
TEST_F(FaultInjectionTest, AdmissionCountsInflightRequestsInTheDepthGate) {
  ThreadPool pool(1);  // idle: queue depth 0
  std::atomic<uint64_t> inflight{0};
  AdmissionOptions options;
  options.max_queue_depth = 2;
  options.pool = &pool;
  options.inflight = &inflight;
  AdmissionController gate(options);

  EXPECT_TRUE(gate.Admit().ok());
  inflight.store(3, std::memory_order_relaxed);
  EXPECT_EQ(gate.Admit().code(), StatusCode::kUnavailable);
  inflight.store(2, std::memory_order_relaxed);  // at the limit, not over
  EXPECT_TRUE(gate.Admit().ok());
}

// Regression: configuring shard_p95_us must scope each shard's live signal
// to that shard's own latency window. Poison the *global* serving-telemetry
// histogram with a storm of slow samples; every shard gate must keep
// admitting (the old behavior — reading the global percentile — shed every
// request on every shard, so one slow shard degraded the whole engine).
TEST_F(FaultInjectionTest, ShardP95GateReadsPerShardWindowNotGlobalLatency) {
  obs::ServingTelemetry& poisoned = obs::ServingTelemetry::Install({});
  for (int i = 0; i < 256; ++i) poisoned.latency().Record(5'000'000.0);

  PqsdaEngineConfig config;
  config.personalize = false;
  ShardedEngineOptions options;
  options.shards = 4;
  options.hot_row_min_degree = 0;
  options.shard_p95_us = 1'000'000.0;  // global window reads 5x this
  auto built = ShardedEngine::Build(FaultLog(), config, options);
  ASSERT_TRUE(built.ok());

  SuggestStats stats = PoisonedStats();
  auto result = (*built)->Suggest(FaultRequest("sun"), 5, &stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(stats.shed);
  // Cross-shard fetches pass their gates too: no shard refused.
  EXPECT_FALSE(stats.partial_merge);

  // Leave a clean global surface for the rest of the suite.
  obs::ServingTelemetry::Install({});
}

// The real per-fetch deadline floor (no injector override): a request whose
// remaining budget has collapsed below fetch_budget_floor_us by the time
// the expansion first touches a non-primary shard gets that shard
// classified kShardDeadline — the fetch is refused and cold rows drop,
// loudly — while the request itself still completes: the budget has not
// expired, it is merely too thin to pay for remote reads.
TEST_F(FaultInjectionTest, BudgetCollapseMidRequestRefusesFetchesLoudly) {
  FaultInjector& injector = FaultInjector::Default();
  injector.SetClock(0);

  PqsdaEngineConfig config;
  config.personalize = false;
  // Budget rungs off: any remaining budget > 0 keeps the full pipeline, so
  // the degradation below is attributable to the fetch floor alone.
  config.robustness.truncated_below_us = 0;
  config.robustness.walk_only_below_us = 0;
  config.robustness.cache_only_below_us = 0;
  ShardedEngineOptions options;
  options.shards = 4;
  options.hot_row_min_degree = 0;
  options.fetch_budget_floor_us = 2'000.0;
  auto built = ShardedEngine::Build(FaultLog(), config, options);
  ASSERT_TRUE(built.ok());
  auto& engine = *built;
  const ShardedProbe probe = FindCrossShardProbe(*engine);

  obs::Counter& partial_total = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.sharded.partial_merges_total");
  const uint64_t partial0 = partial_total.Value();

  CancelToken token(injector.ClockFn());
  token.SetDeadlineAfter(1 * kMs);  // 1ms remaining: under the 2ms floor
  SuggestionRequest request = probe.request;
  request.cancel = &token;
  SuggestStats stats;
  auto result = engine->Suggest(request, 5, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(stats.degradation_rung, 0u);
  EXPECT_TRUE(stats.partial_merge);
  size_t deadline_shards = 0;
  for (size_t s = 0; s < stats.shard_rungs.size(); ++s) {
    EXPECT_NE(stats.shard_rungs[s], SuggestStats::kShardDegraded)
        << "shard " << s;
    if (stats.shard_rungs[s] == SuggestStats::kShardDeadline) {
      ++deadline_shards;
    }
  }
  EXPECT_GT(deadline_shards, 0u);
  EXPECT_EQ(partial_total.Value(), partial0 + 1);

  // With a budget comfortably above the floor the same probe merges fully.
  CancelToken roomy(injector.ClockFn());
  roomy.SetDeadlineAfter(10 * kSec);
  request.cancel = &roomy;
  SuggestStats clean;
  ASSERT_TRUE(engine->Suggest(request, 5, &clean).ok());
  EXPECT_FALSE(clean.partial_merge);
}

TEST_F(FaultInjectionTest, ShardHoldbackMidSwapServesOldBuildConsistently) {
  auto engine = BuildShardedFaultEngine();
  const SuggestionRequest request = FaultRequest("sun");
  auto before = engine->Suggest(request, 5);
  ASSERT_TRUE(before.ok());

  // Shard 2 stalls mid-swap across the rebuild. Requests must keep serving
  // the previous build whole — bitwise the pre-rebuild list, no partial
  // merge, no error.
  FaultInjector::Default().SetValue(faults::kShardSwapHoldback, 2);
  std::vector<QueryLogRecord> delta = {{7, "sun", "www.nasa.gov", 500},
                                       {7, "sun spots", "www.nasa.gov", 520},
                                       {8, "sun spots", "www.nasa.gov", 510}};
  for (const auto& record : delta) {
    ASSERT_TRUE(engine->Ingest(record).ok());
  }
  ASSERT_TRUE(engine->RebuildNow().ok());
  EXPECT_GE(FaultInjector::Default().Hits(faults::kShardSwap), 4u);

  SuggestStats stats;
  auto held = engine->Suggest(request, 5, &stats);
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(stats.partial_merge);
  ASSERT_EQ(before->size(), held->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].query, (*held)[i].query);
    EXPECT_EQ((*before)[i].score, (*held)[i].score);
  }

  // Swap completes: the engine serves what a fresh build over the grown
  // log serves.
  FaultInjector::Default().Reset();
  engine->SyncShards();
  auto grown = FaultLog();
  grown.insert(grown.end(), delta.begin(), delta.end());
  PqsdaEngineConfig config;
  config.personalize = false;
  auto reference = PqsdaEngine::Build(std::move(grown), config);
  ASSERT_TRUE(reference.ok());
  auto expected = (*reference)->Suggest(request, 5);
  ASSERT_TRUE(expected.ok());
  auto after = engine->Suggest(request, 5);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(expected->size(), after->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*expected)[i].query, (*after)[i].query);
    EXPECT_EQ((*expected)[i].score, (*after)[i].score);
  }
}

// Regression for the mid-swap invalidation bug: the post-swap warmup fills
// entries stamped with the INCOMING build's component generations while a
// held-back shard keeps the served consistent cut on the outgoing build.
// The hit path used to grade such an entry against the outgoing cut as
// "stale" and erase it — destroying exactly the entries the warmup just
// paid for, for the benefit of nobody. The tri-state validator must miss
// WITHOUT invalidating (a mismatch, not a staleness), and the entry must
// serve the first reader of the completed swap straight from cache.
//
// Every client request runs at the cache-only rung (min_rung = 3) so the
// probes themselves can neither fill nor overwrite entries — the only
// writer in the test is the warmup.
TEST_F(FaultInjectionTest, MidSwapWarmupEntrySurvivesForIncomingReaders) {
  const std::string log_path = testing::TempDir() + "/midswap_warmup.jsonl";
  {
    obs::RequestLogEntry entry;
    entry.query = "sun";
    entry.k = 5;
    entry.user = kNoUser;
    entry.timestamp = 400;
    entry.ok = true;
    std::ofstream out(log_path, std::ios::trunc);
    out << obs::RequestLog::ToJson(entry) << "\n";
  }

  PqsdaEngineConfig config;
  config.personalize = false;
  config.cache_capacity = 16;
  config.robustness.min_rung = 3;  // clients only ever read the cache
  config.cache_warmup.log_path = log_path;
  config.cache_warmup.max_requests = 8;
  ShardedEngineOptions options;
  options.shards = 4;
  options.hot_row_min_degree = 0;
  auto built = ShardedEngine::Build(FaultLog(), config, options);
  ASSERT_TRUE(built.ok());
  std::unique_ptr<ShardedEngine> engine = std::move(built).value();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& mismatches =
      reg.GetCounter("pqsda.cache.mismatch_misses_total");
  obs::Counter& stales =
      reg.GetCounter("pqsda.cache.stale_invalidations_total");
  obs::Counter& filled = reg.GetCounter("pqsda.cache.warmup_filled_total");
  obs::Counter& hits = reg.GetCounter("pqsda.cache.hits_total");

  // Build does not warm: the cache-only probe finds nothing.
  EXPECT_EQ(engine->Suggest(FaultRequest("sun"), 5).status().code(),
            StatusCode::kNotFound);

  // Shard 1 stalls mid-swap; the rebuild publishes anyway and the warmup
  // fills "sun" under the incoming build on the rebuild thread.
  FaultInjector::Default().SetValue(faults::kShardSwapHoldback, 1);
  const uint64_t filled0 = filled.Value();
  ASSERT_TRUE(engine->Ingest({7, "sun", "www.nasa.gov", 500}).ok());
  ASSERT_TRUE(engine->RebuildNow().ok());
  EXPECT_EQ(filled.Value(), filled0 + 1);

  // The held engine still serves the outgoing cut: the warm entry's
  // generations run AHEAD of it, so the probe misses as a mismatch — and
  // must not invalidate the entry.
  const uint64_t mismatch0 = mismatches.Value();
  const uint64_t stale0 = stales.Value();
  EXPECT_EQ(engine->Suggest(FaultRequest("sun"), 5).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(mismatches.Value(), mismatch0 + 1);
  EXPECT_EQ(stales.Value(), stale0);

  // Swap completes: the retained entry serves the first post-swap reader
  // from cache at the cache-only rung. (The pre-fix code erased it above
  // and this request came back NotFound.)
  FaultInjector::Default().Reset();
  engine->SyncShards();
  const uint64_t hits0 = hits.Value();
  auto served = engine->Suggest(FaultRequest("sun"), 5);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_FALSE(served->empty());
  EXPECT_EQ(hits.Value(), hits0 + 1);
}

}  // namespace
}  // namespace pqsda
