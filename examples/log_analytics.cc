// The query-log substrate end-to-end: generate a log, write/read it as TSV
// (AOL-style), clean it, derive sessions, and print multi-bipartite
// statistics including the cfiqf weighting at work (Eqs. 1-6).
//
//   ./build/examples/log_analytics [--stats] [path.tsv]
//
// Every stage is timed into the process metrics registry
// (pqsda.analytics.<stage>_us); --stats prints the registry as JSON at the
// end so pipeline cost can be compared across log sizes.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "graph/multi_bipartite.h"
#include "log/cleaner.h"
#include "log/log_io.h"
#include "log/sessionizer.h"
#include "obs/metrics.h"
#include "synthetic/generator.h"

using namespace pqsda;

int main(int argc, char** argv) {
  bool show_stats = false;
  const char* path_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else {
      path_arg = argv[i];
    }
  }
  const std::string path =
      path_arg != nullptr ? path_arg : "/tmp/pqsda_demo_log.tsv";

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  auto stage_hist = [&registry](const char* stage) -> obs::Histogram& {
    return registry.GetHistogram(std::string("pqsda.analytics.") + stage +
                                 "_us");
  };

  GeneratorConfig config;
  config.num_users = 150;
  auto data = GenerateLog(config);
  std::printf("generated %zu records for %u users\n", data.records.size(),
              config.num_users);

  // Round-trip through the TSV format.
  {
    obs::ScopedTimer timer(stage_hist("write_tsv"));
    if (auto st = WriteLogTsv(path, data.records); !st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto read = [&] {
    obs::ScopedTimer timer(stage_hist("read_tsv"));
    return ReadLogTsv(path);
  }();
  if (!read.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 read.status().ToString().c_str());
    return 1;
  }
  std::printf("round-tripped %zu records through %s\n", read->size(),
              path.c_str());

  // Clean.
  CleanerOptions cleaner_options;
  cleaner_options.max_records_per_user = 2000;
  CleanerStats stats;
  std::vector<QueryLogRecord> cleaned;
  {
    obs::ScopedTimer timer(stage_hist("clean"));
    cleaned = CleanLog(std::move(read).value(), cleaner_options, &stats);
  }
  std::printf("cleaning: %zu in, %zu out (%zu duplicate-collapsed, %zu "
              "dropped)\n",
              stats.input_records, stats.output_records,
              stats.collapsed_duplicates,
              stats.dropped_empty + stats.dropped_length);

  // Sessionize.
  std::vector<Session> sessions;
  {
    obs::ScopedTimer timer(stage_hist("sessionize"));
    sessions = Sessionize(cleaned);
  }
  double mean_len = cleaned.empty() ? 0.0
                                    : static_cast<double>(cleaned.size()) /
                                          static_cast<double>(sessions.size());
  std::printf("sessions: %zu (mean length %.2f queries)\n", sessions.size(),
              mean_len);

  // Multi-bipartite statistics.
  auto mb = [&] {
    obs::ScopedTimer timer(stage_hist("build_multi_bipartite"));
    return MultiBipartite::Build(cleaned, sessions, EdgeWeighting::kRaw);
  }();
  std::printf("\nmulti-bipartite representation:\n");
  std::printf("  %zu query nodes\n", mb.num_queries());
  const char* names[3] = {"query-URL", "query-session", "query-term"};
  for (BipartiteKind kind : kAllBipartites) {
    const BipartiteGraph& g = mb.graph(kind);
    std::printf("  %-14s %6zu objects, %8zu edges\n",
                names[static_cast<size_t>(kind)], g.num_objects(),
                g.query_to_object().nnz());
  }

  // The most and least discriminative terms by iqf^T (Eq. 3).
  const BipartiteGraph& terms = mb.graph(BipartiteKind::kTerm);
  std::vector<std::pair<double, uint32_t>> by_iqf;
  for (uint32_t t = 0; t < terms.num_objects(); ++t) {
    by_iqf.emplace_back(terms.Iqf(t), t);
  }
  std::sort(by_iqf.begin(), by_iqf.end());
  std::printf("\nleast discriminative terms (lowest iqf^T):\n");
  for (size_t i = 0; i < 5 && i < by_iqf.size(); ++i) {
    std::printf("  %-12s iqf=%.3f (in %u queries)\n",
                mb.terms().Get(by_iqf[i].second).c_str(), by_iqf[i].first,
                terms.ObjectQueryDegree(by_iqf[i].second));
  }
  std::printf("most discriminative terms (highest iqf^T):\n");
  for (size_t i = 0; i < 5 && i < by_iqf.size(); ++i) {
    auto& [iqf, t] = by_iqf[by_iqf.size() - 1 - i];
    std::printf("  %-12s iqf=%.3f (in %u queries)\n",
                mb.terms().Get(t).c_str(), iqf, terms.ObjectQueryDegree(t));
  }

  if (show_stats) {
    std::printf("\nstage timings (metrics registry):\n%s\n",
                registry.ExportJson().c_str());
  }
  return 0;
}
