// UPM in isolation: train the User Profiling Model on a synthetic log and
// inspect what it learned — per-user topic mixtures, the learned
// topic-word hyperpriors, per-topic temporal (Beta) patterns, and preference
// scores of candidate queries.
//
//   ./build/examples/user_profiling_demo

#include <algorithm>
#include <cstdio>

#include "log/sessionizer.h"
#include "synthetic/generator.h"
#include "topic/corpus.h"
#include "topic/perplexity.h"
#include "topic/upm.h"

using namespace pqsda;

int main() {
  GeneratorConfig config;
  config.num_users = 120;
  auto data = GenerateLog(config);
  auto sessions = Sessionize(data.records);
  QueryLogCorpus corpus = QueryLogCorpus::Build(data.records, sessions);
  std::printf("corpus: %zu user-documents, vocab %zu, %zu urls\n\n",
              corpus.num_documents(), corpus.vocab_size(), corpus.num_urls());

  UpmOptions options;
  options.base.num_topics = 12;
  options.base.gibbs_iterations = 60;
  options.hyper_rounds = 2;
  UpmModel upm(options);
  upm.Train(corpus);

  // Learned document-topic prior.
  std::printf("learned alpha:");
  for (double a : upm.alpha()) std::printf(" %.3f", a);
  std::printf("\n\n");

  // Top words of each topic by learned hyperprior beta_k (the shared
  // backbone across users).
  for (size_t k = 0; k < upm.num_topics(); ++k) {
    std::vector<std::pair<double, uint32_t>> scored;
    for (uint32_t w = 0; w < corpus.vocab_size(); ++w) {
      scored.emplace_back(upm.beta()[k][w], w);
    }
    std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                      std::greater<>());
    auto [a, b] = upm.TopicBeta(k);
    std::printf("topic %2zu  (time Beta(%.2f, %.2f), peak %.2f):", k, a, b,
                a / (a + b));
    for (int i = 0; i < 5; ++i) {
      std::printf(" %s", corpus.words().Get(scored[i].second).c_str());
    }
    std::printf("\n");
  }

  // One user's profile and preference scores.
  UserId user = 7;
  size_t doc = corpus.DocumentOf(user);
  std::printf("\nuser %u topic mixture (Eq. 30):", user);
  auto theta = upm.DocumentTopicMixture(doc);
  for (double t : theta) std::printf(" %.2f", t);
  std::printf("\n\npreference scores (Eq. 31) for user %u:\n", user);
  const auto& support = data.users[user].support();
  const Facet& liked = data.facets.facet(support[0]);
  FacetId other_id = (support[0] + data.facets.num_facets() / 2) %
                     data.facets.num_facets();
  const Facet& other = data.facets.facet(other_id);
  for (const Facet* f : {&liked, &other}) {
    const std::string& q = f->query_pool[1];
    std::printf("  %-28s %.5f  (%s facet)\n", q.c_str(),
                upm.PreferenceScore(doc, corpus.WordIds(q)),
                f == &liked ? "preferred" : "unrelated");
  }
  return 0;
}
