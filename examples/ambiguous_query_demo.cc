// The paper's motivating scenario end-to-end: an ambiguous head query whose
// facets are preferred differently by different users. Shows (1) the
// relevance-only view, (2) the diversified candidate list, and (3) the
// personalized final rankings for two users with opposite profiles.
//
//   ./build/examples/ambiguous_query_demo

#include <cstdio>

#include "core/pqsda_engine.h"
#include "suggest/random_walk_suggester.h"
#include "synthetic/generator.h"

using namespace pqsda;

namespace {

void PrintList(const char* title, const std::vector<Suggestion>& list) {
  std::printf("%s\n", title);
  for (size_t i = 0; i < list.size() && i < 8; ++i) {
    std::printf("  %zu. %s\n", i + 1, list[i].query.c_str());
  }
  std::printf("\n");
}

// Finds two users whose preferences concentrate on *different* facets of
// the given concept.
bool FindContrastingUsers(const SyntheticDataset& data, size_t concept_index,
                          UserId* user_a, UserId* user_b) {
  const auto& members = data.facets.concept_facets(concept_index);
  if (members.size() < 2) return false;
  auto leans_toward = [&](const SimulatedUser& u, FacetId f) {
    auto w = u.FacetWeightsAt(0.5);
    for (FacetId m : members) {
      if (m != f && w[m] >= w[f]) return false;
    }
    return w[f] > 0.05;
  };
  for (const auto& ua : data.users) {
    if (!leans_toward(ua, members[0])) continue;
    for (const auto& ub : data.users) {
      if (leans_toward(ub, members[1])) {
        *user_a = ua.id();
        *user_b = ub.id();
        return true;
      }
    }
  }
  return false;
}

}  // namespace

int main() {
  GeneratorConfig config;
  config.num_users = 200;
  auto data = GenerateLog(config);

  PqsdaEngineConfig engine_config;
  engine_config.upm.base.num_topics = 12;
  engine_config.upm.base.gibbs_iterations = 40;
  engine_config.upm.hyper_rounds = 1;
  auto engine = PqsdaEngine::Build(data.records, engine_config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Pick an ambiguous concept with two contrasting users.
  size_t concept_index = 0;
  UserId user_a = 0, user_b = 0;
  for (; concept_index < data.facets.concept_tokens().size();
       ++concept_index) {
    if (FindContrastingUsers(data, concept_index, &user_a, &user_b)) break;
  }
  if (concept_index >= data.facets.concept_tokens().size()) {
    std::fprintf(stderr, "no contrasting users found\n");
    return 1;
  }
  const std::string& token = data.facets.concept_tokens()[concept_index];
  std::printf("ambiguous query: \"%s\" — owned by facets:", token.c_str());
  for (FacetId f : data.facets.concept_facets(concept_index)) {
    std::printf(" %s", data.taxonomy.PathString(
                           data.facets.facet(f).category).c_str());
  }
  std::printf("\nusers: %u vs %u\n\n", user_a, user_b);

  SuggestionRequest request;
  request.query = token;
  request.timestamp = config.start_time + config.duration_seconds / 2;

  // 1. Relevance-only baseline collapses to the dominant facet.
  ClickGraph cg = ClickGraph::Build(data.records, EdgeWeighting::kCfIqf);
  RandomWalkSuggester frw(cg, WalkDirection::kForward);
  if (auto out = frw.Suggest(request, 8); out.ok()) {
    PrintList("relevance-only (FRW):", *out);
  }

  // 2. Diversified candidates cover the facets.
  if (auto out = (*engine)->diversifier().Suggest(request, 8); out.ok()) {
    PrintList("diversified (PQS-DA, before personalization):", *out);

    // 3. Personalized rankings differ per user.
    request.user = user_a;
    PrintList(("personalized for user " + std::to_string(user_a) + ":")
                  .c_str(),
              (*engine)->personalizer()->Rerank(user_a, *out));
    request.user = user_b;
    PrintList(("personalized for user " + std::to_string(user_b) + ":")
                  .c_str(),
              (*engine)->personalizer()->Rerank(user_b, *out));
  }
  return 0;
}
