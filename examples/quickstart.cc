// Quickstart: build a PQS-DA engine over a tiny hand-written query log (the
// paper's Table I, extended slightly) and ask for suggestions for the
// ambiguous query "sun".
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/pqsda_engine.h"

using pqsda::PqsdaEngine;
using pqsda::PqsdaEngineConfig;
using pqsda::QueryLogRecord;
using pqsda::SuggestionRequest;

int main() {
  // A miniature query log: (user, query, clicked URL, timestamp).
  std::vector<QueryLogRecord> log = {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 160},
      {1, "jvm download", "www.java.com", 220},
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 170},
      {2, "solar cell", "en.wikipedia.org", 260},
      {3, "sun oracle", "www.oracle.com", 100},
      {3, "java", "www.java.com", 172},
      {4, "sun", "www.thesun.co.uk", 100},
      {4, "sun daily uk", "www.thesun.co.uk", 150},
      {5, "sun java", "java.sun.com", 90},
      {5, "java", "www.java.com", 140},
  };

  PqsdaEngineConfig config;
  config.diversifier.compact.target_size = 50;  // tiny log, tiny budget
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 40;

  auto engine = PqsdaEngine::Build(log, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  SuggestionRequest request;
  request.query = "sun";
  request.timestamp = 300;
  request.user = 1;  // the java-leaning searcher

  auto suggestions = (*engine)->Suggest(request, 6);
  if (!suggestions.ok()) {
    std::fprintf(stderr, "suggest failed: %s\n",
                 suggestions.status().ToString().c_str());
    return 1;
  }
  std::printf("suggestions for \"%s\" (user %u):\n", request.query.c_str(),
              request.user);
  for (size_t i = 0; i < suggestions->size(); ++i) {
    std::printf("  %zu. %-16s (score %.2f)\n", i + 1,
                (*suggestions)[i].query.c_str(), (*suggestions)[i].score);
  }
  return 0;
}
