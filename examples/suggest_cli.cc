// Interactive suggestion server over a TSV query log: builds the full
// PQS-DA engine from a log file (or a generated demo log when none is
// given), then reads queries from stdin and prints suggestions.
//
//   ./build/examples/suggest_cli [log.tsv]
//   > sun                      # plain query
//   > @12 sun                  # personalize for user 12
//   > quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/pqsda_engine.h"
#include "log/log_io.h"
#include "synthetic/generator.h"

using namespace pqsda;

int main(int argc, char** argv) {
  std::vector<QueryLogRecord> records;
  if (argc > 1) {
    auto read = ReadLogTsv(argv[1]);
    if (!read.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                   read.status().ToString().c_str());
      return 1;
    }
    records = std::move(read).value();
    std::printf("loaded %zu records from %s\n", records.size(), argv[1]);
  } else {
    GeneratorConfig config;
    config.num_users = 150;
    auto data = GenerateLog(config);
    records = std::move(data.records);
    std::printf("no log given; generated a %zu-record demo log\n",
                records.size());
  }

  PqsdaEngineConfig config;
  config.upm.base.num_topics = 12;
  config.upm.base.gibbs_iterations = 40;
  std::printf("building engine (representation + UPM training)...\n");
  auto engine = PqsdaEngine::Build(std::move(records), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("ready. type a query ('@<user-id> <query>' to personalize, "
              "'quit' to exit)\n");

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;

    SuggestionRequest request;
    request.user = kNoUser;
    if (line[0] == '@') {
      std::istringstream in(line.substr(1));
      uint32_t user = 0;
      in >> user;
      std::getline(in, request.query);
      while (!request.query.empty() && request.query.front() == ' ') {
        request.query.erase(request.query.begin());
      }
      request.user = user;
    } else {
      request.query = line;
    }
    if (request.query.empty()) continue;

    auto suggestions = (*engine)->Suggest(request, 10);
    if (!suggestions.ok()) {
      std::printf("  (%s)\n", suggestions.status().ToString().c_str());
      continue;
    }
    for (size_t i = 0; i < suggestions->size(); ++i) {
      std::printf("  %2zu. %s\n", i + 1, (*suggestions)[i].query.c_str());
    }
  }
  return 0;
}
