// Interactive suggestion server over a TSV query log: builds the full
// PQS-DA engine from a log file (or a generated demo log when none is
// given), then reads queries from stdin and prints suggestions.
//
//   ./build/examples/suggest_cli [--stats] [log.tsv]
//   > sun                      # plain query
//   > @12 sun                  # personalize for user 12
//   > metrics                  # dump the process metrics registry (JSON)
//   > quit
//
// With --stats every answer is followed by the request's stage trace and
// work counters (SuggestStats::Render()): per-stage wall micros for
// expansion, the Eq. 15 solve, hitting-time selection and the UPM rerank.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/pqsda_engine.h"
#include "log/log_io.h"
#include "obs/metrics.h"
#include "synthetic/generator.h"

using namespace pqsda;

int main(int argc, char** argv) {
  bool show_stats = false;
  const char* log_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else {
      log_path = argv[i];
    }
  }

  std::vector<QueryLogRecord> records;
  if (log_path != nullptr) {
    auto read = ReadLogTsv(log_path);
    if (!read.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", log_path,
                   read.status().ToString().c_str());
      return 1;
    }
    records = std::move(read).value();
    std::printf("loaded %zu records from %s\n", records.size(), log_path);
  } else {
    GeneratorConfig config;
    config.num_users = 150;
    auto data = GenerateLog(config);
    records = std::move(data.records);
    std::printf("no log given; generated a %zu-record demo log\n",
                records.size());
  }

  PqsdaEngineConfig config;
  config.upm.base.num_topics = 12;
  config.upm.base.gibbs_iterations = 40;
  std::printf("building engine (representation + UPM training)...\n");
  auto engine = PqsdaEngine::Build(std::move(records), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("ready. type a query ('@<user-id> <query>' to personalize, "
              "'metrics' for the registry, 'quit' to exit)\n");

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    if (line == "metrics") {
      std::printf("%s\n", obs::MetricsRegistry::Default().ExportJson().c_str());
      continue;
    }

    SuggestionRequest request;
    request.user = kNoUser;
    if (line[0] == '@') {
      std::istringstream in(line.substr(1));
      uint32_t user = 0;
      in >> user;
      std::getline(in, request.query);
      while (!request.query.empty() && request.query.front() == ' ') {
        request.query.erase(request.query.begin());
      }
      request.user = user;
    } else {
      request.query = line;
    }
    if (request.query.empty()) continue;

    SuggestStats stats;
    auto suggestions =
        (*engine)->Suggest(request, 10, show_stats ? &stats : nullptr);
    if (!suggestions.ok()) {
      std::printf("  (%s)\n", suggestions.status().ToString().c_str());
      continue;
    }
    for (size_t i = 0; i < suggestions->size(); ++i) {
      std::printf("  %2zu. %s\n", i + 1, (*suggestions)[i].query.c_str());
    }
    if (show_stats) std::printf("\n%s", stats.Render().c_str());
  }
  return 0;
}
