// Interactive suggestion server over a TSV query log: builds the full
// PQS-DA engine from a log file (or a generated demo log when none is
// given), then reads queries from stdin and prints suggestions.
//
//   ./build/examples/suggest_cli [--stats] [--cache=N] [log.tsv]
//   > sun                      # plain query
//   > @12 sun                  # personalize for user 12
//   > batch sun; solar energy; @3 java     # serve ';'-separated requests
//                                          # concurrently via SuggestBatch
//   > metrics                  # dump the process metrics registry (JSON)
//   > quit
//
// With --stats every answer is followed by the request's stage trace and
// work counters (SuggestStats::Render()): per-stage wall micros for
// expansion, the Eq. 15 solve, hitting-time selection and the UPM rerank.
// With --cache=N served lists are kept in an N-entry LRU result cache;
// repeated requests are answered from it (watch pqsda.cache.hits_total in
// 'metrics').

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/pqsda_engine.h"
#include "log/log_io.h"
#include "obs/metrics.h"
#include "synthetic/generator.h"

using namespace pqsda;

namespace {

// Parses one interactive request line: "@<user> <query>" or plain "<query>".
SuggestionRequest ParseRequest(std::string line) {
  while (!line.empty() && line.front() == ' ') line.erase(line.begin());
  SuggestionRequest request;
  request.user = kNoUser;
  if (!line.empty() && line[0] == '@') {
    std::istringstream in(line.substr(1));
    uint32_t user = 0;
    in >> user;
    std::getline(in, request.query);
    request.user = user;
  } else {
    request.query = line;
  }
  while (!request.query.empty() && request.query.front() == ' ') {
    request.query.erase(request.query.begin());
  }
  while (!request.query.empty() && request.query.back() == ' ') {
    request.query.pop_back();
  }
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  bool show_stats = false;
  size_t cache_capacity = 0;
  const char* log_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      cache_capacity = std::strtoul(argv[i] + 8, nullptr, 10);
    } else {
      log_path = argv[i];
    }
  }

  std::vector<QueryLogRecord> records;
  if (log_path != nullptr) {
    auto read = ReadLogTsv(log_path);
    if (!read.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", log_path,
                   read.status().ToString().c_str());
      return 1;
    }
    records = std::move(read).value();
    std::printf("loaded %zu records from %s\n", records.size(), log_path);
  } else {
    GeneratorConfig config;
    config.num_users = 150;
    auto data = GenerateLog(config);
    records = std::move(data.records);
    std::printf("no log given; generated a %zu-record demo log\n",
                records.size());
  }

  PqsdaEngineConfig config;
  config.upm.base.num_topics = 12;
  config.upm.base.gibbs_iterations = 40;
  config.cache_capacity = cache_capacity;
  if (cache_capacity > 0) {
    std::printf("result cache enabled (%zu entries)\n", cache_capacity);
  }
  std::printf("building engine (representation + UPM training)...\n");
  auto engine = PqsdaEngine::Build(std::move(records), config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("ready. type a query ('@<user-id> <query>' to personalize, "
              "'batch q1; q2; ...' for concurrent serving, 'metrics' for "
              "the registry, 'quit' to exit)\n");

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    if (line == "metrics") {
      std::printf("%s\n", obs::MetricsRegistry::Default().ExportJson().c_str());
      continue;
    }

    if (line.rfind("batch ", 0) == 0) {
      std::vector<SuggestionRequest> requests;
      std::istringstream in(line.substr(6));
      std::string part;
      while (std::getline(in, part, ';')) {
        SuggestionRequest request = ParseRequest(part);
        if (!request.query.empty()) requests.push_back(std::move(request));
      }
      if (requests.empty()) continue;
      auto results = (*engine)->SuggestBatch(requests, 10);
      for (size_t r = 0; r < results.size(); ++r) {
        std::printf("[%zu] %s\n", r + 1, requests[r].query.c_str());
        if (!results[r].ok()) {
          std::printf("  (%s)\n", results[r].status().ToString().c_str());
          continue;
        }
        for (size_t i = 0; i < results[r]->size(); ++i) {
          std::printf("  %2zu. %s\n", i + 1, (*results[r])[i].query.c_str());
        }
      }
      continue;
    }

    SuggestionRequest request = ParseRequest(line);
    if (request.query.empty()) continue;

    SuggestStats stats;
    auto suggestions =
        (*engine)->Suggest(request, 10, show_stats ? &stats : nullptr);
    if (!suggestions.ok()) {
      std::printf("  (%s)\n", suggestions.status().ToString().c_str());
      continue;
    }
    for (size_t i = 0; i < suggestions->size(); ++i) {
      std::printf("  %2zu. %s\n", i + 1, (*suggestions)[i].query.c_str());
    }
    if (show_stats) std::printf("\n%s", stats.Render().c_str());
  }
  return 0;
}
