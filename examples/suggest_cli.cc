// Interactive suggestion server over a TSV query log: builds the full
// PQS-DA engine from a log file (or a generated demo log when none is
// given), then reads queries from stdin and prints suggestions.
//
//   ./build/examples/suggest_cli [--stats] [--cache=N] [--http_port=N]
//                                [--request_log=path] [--slow_ms=T]
//                                [--sample_every=N] [--deadline_ms=T]
//                                [--shed_queue_depth=N] [--min_rung=R]
//                                [--ingest=N] [--tail=path] [--slo=SPECS]
//                                [--log_rotate_kb=N] [--explain_every=N]
//                                [--shards=N] [--cache_policy=NAME]
//                                [--negative_cache=N] [--whole_gen_cache]
//                                [--warmup_log=path] [--warmup_max=N]
//                                [log.tsv]
//   > sun                      # plain query
//   > @12 sun                  # personalize for user 12
//   > batch sun; solar energy; @3 java     # serve ';'-separated requests
//                                          # concurrently via SuggestBatch
//   > metrics                  # dump the process metrics registry (JSON)
//   > statusz                  # windowed serving snapshot (JSON)
//   > ingest 50                # feed 50 held-out records into the live index
//   > rebuild                  # force a rebuild+swap of buffered deltas
//   > index                    # live-index status (generation, delta depth)
//   > tail 12                  # user 12's open tail session in the stream
//   > explain sun              # serve + full per-candidate attribution
//   > explain @12 sun          # ... personalized (UPM + Borda terms shown)
//   > replay 17                # re-run logged request 17 against its pinned
//                              # generation and verify the result bitwise
//   > quit
//
// With --stats every answer is followed by the request's stage trace and
// work counters (SuggestStats::Render()) plus the *delta* of the process
// metrics registry across the request — what this one request recorded,
// not the session's cumulative totals.
// With --cache=N served lists are kept in an N-entry result cache;
// repeated requests are answered from it (watch pqsda.cache.hits_total in
// 'metrics').
//
// Profiling & SLOs: serve mode also exposes /profilez (windowed per-stage
// cost attribution tree, ?window=10s|1m|5m) and /alertz (burn-rate SLO
// alerts). --slo=SPECS configures the SLOs as a comma-separated list of
// kind:objective[:threshold_us] with kind in availability|latency|
// shed_rate, e.g. --slo=availability:0.999,latency:0.99:200000.
// --log_rotate_kb=N rolls the request log at N KiB (3 rotated files kept).
//
// Decision observability: --explain_every=N head-samples every Nth request
// into the /explainz ring (0 = off; the 'explain' command always captures
// regardless). 'explain <query>' prints the served list followed by the
// per-candidate attribution table — Eq. 15 relevance, Algorithm 1 selection
// round / hitting-time rank per chain, and (for @user requests) the UPM
// preference score and Borda points per source list. 'replay <id>' looks a
// request up in the --request_log JSONL (including rotated files), re-runs
// it against the snapshot generation it originally pinned (IndexManager
// keeps a bounded ring of retired generations) at the logged degradation
// rung with the cache bypassed, and reports whether the reproduced list is
// bitwise identical to the logged one.
//
// Serve mode: --http_port=N starts the embedded telemetry exporter on
// 127.0.0.1:N (0 picks a free port) with /metrics (Prometheus), /healthz,
// /statusz (windowed QPS / error rate / latency percentiles) and /tracez
// (recent + slowest request traces). --request_log=path appends sampled
// structured JSONL request records (every --sample_every'th request plus
// everything slower than --slow_ms milliseconds).
//
// Overload hardening: --deadline_ms=T serves every request under a T-ms
// deadline (the engine's degradation ladder may answer a truncated-solve,
// walk-only or cache-only result as budget runs out; expiry mid-stage
// returns DeadlineExceeded, never a partial list). --shed_queue_depth=N
// sheds requests (Unavailable) while the shared pool queue is deeper than
// N. --min_rung=R floors the ladder at rung R (0 full, 1 truncated solve,
// 2 walk-only, 3 cache-only) — with --stats the served rung is printed per
// request, and 'statusz' shows the per-rung/shed totals.
//
// Live ingestion: --ingest=N holds the last N log records out of the
// initial build; the 'ingest [n]' command then feeds them into the engine's
// delta buffer one chunk at a time, 'rebuild' forces the next generation to
// build and swap in, and 'index' prints the live-index status — requests
// keep being served (off the pinned snapshot) throughout. --tail=path
// follows a TSV file like `tail -f`: lines appended to it while the server
// runs are parsed and ingested live, with rebuilds triggering off-path at
// the configured threshold. 'tail <user>' shows a user's open (not yet
// absorbed) session in the ingest stream.
//
// Sharded serving: --shards=N (N>1) builds the scatter-gather ShardedEngine
// instead of the monolithic one — queries route to a primary shard's lane,
// expansion gathers rows across shards, and served lists stay bitwise
// identical to unsharded mode. --shed_queue_depth then configures the
// *per-shard* admission gates, 'batch' admits at each request's own
// primary lane, 'index' shows the consistent-cut build id plus per-shard
// generations, and 'statusz' grows the per-shard section. With --stats the
// per-shard serving rungs and partial-merge flag are printed per request.
// 'explain', 'replay' and --tail still need the unsharded engine.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "common/cancellation.h"
#include "core/pqsda_engine.h"
#include "suggest/cache_policy.h"
#include "core/sharded_engine.h"
#include "log/log_io.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"
#include "synthetic/generator.h"

using namespace pqsda;

namespace {

// Parses one interactive request line: "@<user> <query>" or plain "<query>".
SuggestionRequest ParseRequest(std::string line) {
  while (!line.empty() && line.front() == ' ') line.erase(line.begin());
  SuggestionRequest request;
  request.user = kNoUser;
  if (!line.empty() && line[0] == '@') {
    std::istringstream in(line.substr(1));
    uint32_t user = 0;
    in >> user;
    std::getline(in, request.query);
    request.user = user;
  } else {
    request.query = line;
  }
  while (!request.query.empty() && request.query.front() == ' ') {
    request.query.erase(request.query.begin());
  }
  while (!request.query.empty() && request.query.back() == ' ') {
    request.query.pop_back();
  }
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  bool show_stats = false;
  size_t cache_capacity = 0;
  int http_port = -1;  // -1 = exporter off; 0 = ephemeral
  const char* request_log_path = nullptr;
  long slow_ms = 100;
  unsigned long sample_every = 32;
  long deadline_ms = 0;  // 0 = no per-request deadline
  size_t shed_queue_depth = 0;
  size_t min_rung = 0;
  size_t ingest_holdout = 0;
  const char* tail_path = nullptr;
  const char* slo_specs = nullptr;
  unsigned long log_rotate_kb = 0;
  unsigned long explain_every = 0;
  size_t shards = 0;
  CachePolicyKind cache_policy = CachePolicyKind::kLru;
  size_t negative_cache = 0;
  bool whole_gen_cache = false;
  const char* warmup_log = nullptr;
  unsigned long warmup_max = 0;
  const char* log_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      cache_capacity = std::strtoul(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--http_port=", 12) == 0) {
      http_port = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--request_log=", 14) == 0) {
      request_log_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--slow_ms=", 10) == 0) {
      slow_ms = std::atol(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--sample_every=", 15) == 0) {
      sample_every = std::strtoul(argv[i] + 15, nullptr, 10);
    } else if (std::strncmp(argv[i], "--deadline_ms=", 14) == 0) {
      deadline_ms = std::atol(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--shed_queue_depth=", 19) == 0) {
      shed_queue_depth = std::strtoul(argv[i] + 19, nullptr, 10);
    } else if (std::strncmp(argv[i], "--min_rung=", 11) == 0) {
      min_rung = std::strtoul(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--ingest=", 9) == 0) {
      ingest_holdout = std::strtoul(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--tail=", 7) == 0) {
      tail_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--slo=", 6) == 0) {
      slo_specs = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--log_rotate_kb=", 16) == 0) {
      log_rotate_kb = std::strtoul(argv[i] + 16, nullptr, 10);
    } else if (std::strncmp(argv[i], "--explain_every=", 16) == 0) {
      explain_every = std::strtoul(argv[i] + 16, nullptr, 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::strtoul(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--cache_policy=", 15) == 0) {
      if (!ParseCachePolicy(argv[i] + 15, &cache_policy)) {
        std::fprintf(stderr,
                     "unknown cache policy '%s' (lru, clock, arc, car)\n",
                     argv[i] + 15);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--negative_cache=", 17) == 0) {
      negative_cache = std::strtoul(argv[i] + 17, nullptr, 10);
    } else if (std::strcmp(argv[i], "--whole_gen_cache") == 0) {
      whole_gen_cache = true;
    } else if (std::strncmp(argv[i], "--warmup_log=", 13) == 0) {
      warmup_log = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--warmup_max=", 13) == 0) {
      warmup_max = std::strtoul(argv[i] + 13, nullptr, 10);
    } else {
      log_path = argv[i];
    }
  }

  std::vector<QueryLogRecord> records;
  if (log_path != nullptr) {
    auto read = ReadLogTsv(log_path);
    if (!read.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", log_path,
                   read.status().ToString().c_str());
      return 1;
    }
    records = std::move(read).value();
    std::printf("loaded %zu records from %s\n", records.size(), log_path);
  } else {
    GeneratorConfig config;
    config.num_users = 150;
    auto data = GenerateLog(config);
    records = std::move(data.records);
    std::printf("no log given; generated a %zu-record demo log\n",
                records.size());
  }

  // --ingest=N holds the tail of the log out of the initial build; the
  // interactive 'ingest' command replays it into the live index later.
  std::deque<QueryLogRecord> holdout;
  if (ingest_holdout > 0) {
    if (ingest_holdout >= records.size()) {
      std::fprintf(stderr, "--ingest=%zu leaves no records to build from\n",
                   ingest_holdout);
      return 1;
    }
    holdout.assign(records.end() - ingest_holdout, records.end());
    records.resize(records.size() - ingest_holdout);
    std::printf("held %zu records out of the build for live ingestion\n",
                holdout.size());
  }

  // Serve mode: install configured telemetry (trace sampling on) before the
  // first request, attach the request log, start the exporter.
  obs::HttpExporter exporter;
  if (http_port >= 0 || request_log_path != nullptr || slo_specs != nullptr) {
    obs::ServingTelemetryOptions telemetry_options;
    telemetry_options.trace_sample_every = 16;
    obs::ServingTelemetry& telemetry =
        obs::ServingTelemetry::Install(telemetry_options);
    if (slo_specs != nullptr) {
      auto specs = obs::ParseSloSpecs(slo_specs);
      if (!specs.ok()) {
        std::fprintf(stderr, "--slo: %s\n", specs.status().ToString().c_str());
        return 1;
      }
      telemetry.ConfigureSlos(std::move(*specs));
      std::printf("SLO tracking on %zu objective(s); see /alertz or the "
                  "'alertz' command\n",
                  telemetry.slo() != nullptr ? telemetry.slo()->num_slos()
                                             : 0);
    }
    if (request_log_path != nullptr) {
      obs::RequestLogOptions log_options;
      log_options.path = request_log_path;
      log_options.sample_every = sample_every;
      log_options.slow_us = slow_ms * 1000;
      log_options.rotate_bytes = log_rotate_kb * 1024;
      auto log = obs::RequestLog::Open(log_options);
      if (!log.ok()) {
        std::fprintf(stderr, "request log: %s\n",
                     log.status().ToString().c_str());
        return 1;
      }
      telemetry.AttachRequestLog(std::move(log).value());
      std::printf("request log: %s (every %luth request + slower than "
                  "%ldms)\n",
                  request_log_path, sample_every, slow_ms);
      if (log_rotate_kb > 0) {
        std::printf("request log rotation at %lu KiB (3 rotated files "
                    "kept)\n",
                    log_rotate_kb);
      }
    }
    if (http_port >= 0) {
      telemetry.RegisterEndpoints(&exporter);
      Status started = exporter.Start(http_port);
      if (!started.ok()) {
        std::fprintf(stderr, "exporter: %s\n", started.ToString().c_str());
        return 1;
      }
      std::printf("telemetry exporter on http://127.0.0.1:%d "
                  "(/metrics /healthz /statusz /tracez /profilez /alertz "
                  "/explainz)\n",
                  exporter.port());
    }
  }
  if (explain_every > 0) {
    obs::ServingTelemetry::Default().SetExplainSampleEvery(explain_every);
    std::printf("explain sampling: every %luth request into the /explainz "
                "ring\n",
                explain_every);
  }

  PqsdaEngineConfig config;
  config.upm.base.num_topics = 12;
  config.upm.base.gibbs_iterations = 40;
  config.cache_capacity = cache_capacity;
  config.cache_policy = cache_policy;
  config.negative_cache_capacity = negative_cache;
  config.cache_delta_aware = !whole_gen_cache;
  if (warmup_log != nullptr) {
    config.cache_warmup.log_path = warmup_log;
    if (warmup_max > 0) config.cache_warmup.max_requests = warmup_max;
  }
  config.robustness.min_rung = min_rung;
  config.robustness.shed_queue_depth = shed_queue_depth;
  if (cache_capacity > 0) {
    std::printf("result cache enabled (%zu entries, policy %s, %s "
                "invalidation)\n",
                cache_capacity, CachePolicyName(cache_policy),
                whole_gen_cache ? "whole-generation" : "delta-aware");
  }
  if (negative_cache > 0) {
    std::printf("negative cache enabled (%zu known-NotFound entries)\n",
                negative_cache);
  }
  if (warmup_log != nullptr) {
    std::printf("post-swap cache warmup from %s\n", warmup_log);
  }
  if (deadline_ms > 0) {
    std::printf("per-request deadline: %ldms\n", deadline_ms);
  }
  if (shed_queue_depth > 0) {
    std::printf("load shedding above pool queue depth %zu\n",
                shed_queue_depth);
  }
  if (min_rung > 0) {
    std::printf("degradation ladder floored at rung %zu\n", min_rung);
  }
  // --shards=N builds the scatter-gather coordinator instead; exactly one
  // of the two engines exists below. Commands that need the monolithic
  // engine's internals (explain/replay/--tail) refuse in sharded mode.
  std::unique_ptr<PqsdaEngine> engine;
  std::unique_ptr<ShardedEngine> sharded;
  if (shards > 1) {
    if (tail_path != nullptr) {
      std::fprintf(stderr, "--tail is not supported with --shards\n");
      return 1;
    }
    ShardedEngineOptions shard_options;
    shard_options.shards = shards;
    shard_options.shard_queue_depth = shed_queue_depth;
    std::printf("building sharded engine (%zu shards, representation + UPM "
                "training)...\n",
                shards);
    auto built = ShardedEngine::Build(std::move(records), config,
                                      shard_options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    sharded = std::move(*built);
  } else {
    std::printf("building engine (representation + UPM training)...\n");
    auto built = PqsdaEngine::Build(std::move(records), config);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    engine = std::move(*built);
  }
  // --tail=path: follow a TSV file from its current end; appended complete
  // lines are parsed and ingested live while the prompt keeps serving.
  std::atomic<bool> tail_stop{false};
  std::thread tail_thread;
  if (tail_path != nullptr) {
    std::ifstream probe(tail_path);
    if (!probe.good()) {
      std::fprintf(stderr, "cannot open --tail file %s\n", tail_path);
      return 1;
    }
    tail_thread = std::thread([tail_path, &tail_stop, &engine] {
      std::ifstream in(tail_path);
      in.seekg(0, std::ios::end);
      std::string line;
      while (!tail_stop.load(std::memory_order_relaxed)) {
        if (std::getline(in, line)) {
          if (line.empty()) continue;
          auto record = ParseLogLine(line);
          if (!record.ok()) {
            std::fprintf(stderr, "tail: skipping malformed line: %s\n",
                         record.status().ToString().c_str());
            continue;
          }
          Status ingested = engine->Ingest(std::move(record).value());
          if (!ingested.ok()) {
            std::fprintf(stderr, "tail: %s\n", ingested.ToString().c_str());
          }
        } else {
          // At EOF: clear the fail state and wait for the file to grow.
          in.clear();
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
      }
    });
    std::printf("tailing %s for live ingestion\n", tail_path);
  }

  std::printf("ready. type a query ('@<user-id> <query>' to personalize, "
              "'batch q1; q2; ...' for concurrent serving, 'metrics' for "
              "the registry, 'statusz' / 'profilez' / 'alertz' for windowed "
              "snapshots, 'ingest "
              "[n]' / 'rebuild' / 'index' / 'tail <user>' for the live "
              "index, 'explain <query>' for per-candidate attribution, "
              "'replay <id>' to re-run a logged request, 'quit' to exit)\n");

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    if (line == "metrics") {
      std::printf("%s\n", obs::MetricsRegistry::Default().ExportJson().c_str());
      continue;
    }
    if (line == "statusz") {
      std::printf("%s\n",
                  obs::ServingTelemetry::Default().StatuszJson().c_str());
      continue;
    }
    if (line == "alertz") {
      std::printf("%s\n",
                  obs::ServingTelemetry::Default().AlertzJson().c_str());
      continue;
    }
    if (line == "profilez") {
      std::printf("%s\n", obs::StageProfiler::Default()
                              .ProfilezJson(60LL * 1000000000LL)
                              .c_str());
      continue;
    }
    if (line == "index") {
      if (sharded) {
        auto build = sharded->AcquireConsistent();
        std::printf("build %llu | %zu records | %zu shards | delta depth "
                    "%zu | upm generation %llu | shard generations [",
                    static_cast<unsigned long long>(build->build_id),
                    build->base->records.size(), sharded->shards(),
                    sharded->delta_depth(),
                    static_cast<unsigned long long>(build->upm_generation));
        for (size_t s = 0; s < build->shard_generation.size(); ++s) {
          std::printf("%s%llu", s > 0 ? " " : "",
                      static_cast<unsigned long long>(
                          build->shard_generation[s]));
        }
        std::printf("]\n");
        continue;
      }
      IndexManager& index = engine->index_manager();
      auto snap = index.Acquire();
      std::printf("generation %llu | %zu records | %zu sessions | delta "
                  "depth %zu | ingested %llu | rebuilds %llu | last build "
                  "%lld us\n",
                  static_cast<unsigned long long>(snap->generation),
                  snap->records.size(), snap->sessions.size(),
                  index.delta_depth(),
                  static_cast<unsigned long long>(index.ingested_total()),
                  static_cast<unsigned long long>(index.rebuilds_total()),
                  static_cast<long long>(snap->build_us));
      continue;
    }
    if (line == "rebuild") {
      if (sharded) {
        const uint64_t before = sharded->AcquireConsistent()->build_id;
        Status rebuilt = sharded->RebuildNow();
        if (!rebuilt.ok()) {
          std::printf("  (%s)\n", rebuilt.ToString().c_str());
          continue;
        }
        // An ingest may already have scheduled the rebuild on a shard lane;
        // wait it out so the printed build id reflects the drained buffer.
        sharded->WaitForRebuilds();
        const uint64_t after = sharded->AcquireConsistent()->build_id;
        if (after == before) {
          std::printf("delta buffer empty; still build %llu\n",
                      static_cast<unsigned long long>(after));
        } else {
          std::printf("build %llu -> %llu\n",
                      static_cast<unsigned long long>(before),
                      static_cast<unsigned long long>(after));
        }
        continue;
      }
      IndexManager& index = engine->index_manager();
      const uint64_t before = index.generation();
      Status rebuilt = index.RebuildNow();
      if (!rebuilt.ok()) {
        std::printf("  (%s)\n", rebuilt.ToString().c_str());
        continue;
      }
      const uint64_t after = index.generation();
      if (after == before) {
        std::printf("delta buffer empty; still generation %llu\n",
                    static_cast<unsigned long long>(after));
      } else {
        std::printf("generation %llu -> %llu\n",
                    static_cast<unsigned long long>(before),
                    static_cast<unsigned long long>(after));
      }
      continue;
    }
    if (line == "ingest" || line.rfind("ingest ", 0) == 0) {
      size_t n = holdout.size();
      if (line.size() > 7) n = std::strtoul(line.c_str() + 7, nullptr, 10);
      if (holdout.empty()) {
        std::printf("no held-out records (start with --ingest=N)\n");
        continue;
      }
      n = std::min(n, holdout.size());
      std::vector<QueryLogRecord> chunk(holdout.begin(), holdout.begin() + n);
      holdout.erase(holdout.begin(), holdout.begin() + n);
      if (sharded) {
        size_t fed = 0;
        Status ingested = Status::OK();
        for (QueryLogRecord& record : chunk) {
          ingested = sharded->Ingest(std::move(record));
          if (!ingested.ok()) break;
          ++fed;
        }
        if (!ingested.ok()) {
          std::printf("  (%s after %zu records)\n",
                      ingested.ToString().c_str(), fed);
          continue;
        }
        std::printf("ingested %zu records (%zu held out remain, delta depth "
                    "%zu)\n",
                    fed, holdout.size(), sharded->delta_depth());
        continue;
      }
      Status ingested =
          engine->index_manager().IngestBatch(std::move(chunk));
      if (!ingested.ok()) {
        std::printf("  (%s)\n", ingested.ToString().c_str());
        continue;
      }
      std::printf("ingested %zu records (%zu held out remain, delta depth "
                  "%zu)\n",
                  n, holdout.size(), engine->index_manager().delta_depth());
      continue;
    }
    if (line.rfind("tail ", 0) == 0) {
      if (sharded) {
        std::printf("tail inspection is not supported with --shards\n");
        continue;
      }
      const char* arg = line.c_str() + 5;
      while (*arg == ' ' || *arg == '@') ++arg;
      const UserId user =
          static_cast<UserId>(std::strtoul(arg, nullptr, 10));
      auto tail = engine->index_manager().TailContext(user);
      if (tail.empty()) {
        std::printf("user %u has no open tail session in the ingest stream\n",
                    user);
        continue;
      }
      std::printf("user %u open tail (%zu queries):\n", user, tail.size());
      for (const auto& [query, ts] : tail) {
        std::printf("  t=%lld  %s\n", static_cast<long long>(ts),
                    query.c_str());
      }
      continue;
    }

    if (line.rfind("explain ", 0) == 0) {
      if (sharded) {
        std::printf("explain capture is not supported with --shards (use "
                    "--stats for per-shard rungs)\n");
        continue;
      }
      SuggestionRequest request = ParseRequest(line.substr(8));
      if (request.query.empty()) continue;
      CancelToken token;
      if (deadline_ms > 0) {
        token.SetDeadlineAfter(deadline_ms * 1'000'000);
        request.cancel = &token;
      }
      obs::ExplainRecord record;
      auto suggestions = engine->Suggest(request, 10, nullptr, &record);
      if (!suggestions.ok()) {
        std::printf("  (%s)\n", suggestions.status().ToString().c_str());
        continue;
      }
      for (size_t i = 0; i < suggestions->size(); ++i) {
        std::printf("  %2zu. %s\n", i + 1, (*suggestions)[i].query.c_str());
      }
      std::printf("\n%s", record.Render().c_str());
      continue;
    }

    if (line.rfind("replay ", 0) == 0) {
      if (sharded) {
        std::printf("replay is not supported with --shards\n");
        continue;
      }
      if (request_log_path == nullptr) {
        std::printf("replay needs --request_log=path\n");
        continue;
      }
      const uint64_t id = std::strtoull(line.c_str() + 7, nullptr, 10);
      if (obs::RequestLog* log =
              obs::ServingTelemetry::Default().request_log()) {
        log->Flush();
      }
      // Look the request up in the active log file, then the rotated chain
      // (newest first), so recently-rolled entries stay replayable.
      const std::string needle = "\"request_id\":" + std::to_string(id) + ",";
      std::optional<obs::RequestLogEntry> entry;
      for (int f = 0; f <= 4 && !entry.has_value(); ++f) {
        std::string p = request_log_path;
        if (f > 0) p += "." + std::to_string(f);
        std::ifstream in(p);
        std::string l;
        while (std::getline(in, l)) {
          if (l.find(needle) == std::string::npos) continue;
          auto parsed = obs::ParseRequestLogEntry(l);
          if (!parsed.ok()) {
            std::printf("  (%s)\n", parsed.status().ToString().c_str());
            continue;
          }
          if (parsed->request_id == id) {
            entry = std::move(*parsed);
            break;
          }
        }
      }
      if (!entry.has_value()) {
        std::printf("request %llu not in %s or its rotated chain (sampled "
                    "out, rotated away, or never served)\n",
                    static_cast<unsigned long long>(id), request_log_path);
        continue;
      }
      std::printf("replaying request %llu: \"%s\" (generation %llu, rung "
                  "%u%s)\n",
                  static_cast<unsigned long long>(id), entry->query.c_str(),
                  static_cast<unsigned long long>(entry->generation),
                  static_cast<unsigned>(entry->rung),
                  entry->cache_hit ? ", originally a cache hit" : "");
      obs::ExplainRecord record;
      auto replayed = engine->Replay(*entry, &record);
      if (!replayed.ok()) {
        if (!entry->ok) {
          std::printf("  replay failed like the original: %s (logged: %s)\n",
                      replayed.status().ToString().c_str(),
                      entry->status.c_str());
        } else {
          std::printf("  (%s)\n", replayed.status().ToString().c_str());
        }
        continue;
      }
      for (size_t i = 0; i < replayed->size(); ++i) {
        std::printf("  %2zu. %s\n", i + 1, (*replayed)[i].query.c_str());
      }
      bool lists_match = replayed->size() == entry->suggestions.size();
      for (size_t i = 0; lists_match && i < replayed->size(); ++i) {
        lists_match = (*replayed)[i].query == entry->suggestions[i];
      }
      if (record.fingerprint == entry->fingerprint && lists_match) {
        std::printf("bitwise match: fingerprint %s reproduced\n",
                    obs::FingerprintToHex(record.fingerprint).c_str());
      } else {
        std::printf("MISMATCH: logged fingerprint %s, replayed %s\n",
                    obs::FingerprintToHex(entry->fingerprint).c_str(),
                    obs::FingerprintToHex(record.fingerprint).c_str());
      }
      std::printf("\n%s", record.Render().c_str());
      continue;
    }

    if (line.rfind("batch ", 0) == 0) {
      std::vector<SuggestionRequest> requests;
      std::istringstream in(line.substr(6));
      std::string part;
      while (std::getline(in, part, ';')) {
        SuggestionRequest request = ParseRequest(part);
        if (!request.query.empty()) requests.push_back(std::move(request));
      }
      if (requests.empty()) continue;
      // One token per request; the deque keeps them stable (and alive)
      // across the batch call.
      std::deque<CancelToken> tokens;
      if (deadline_ms > 0) {
        for (SuggestionRequest& request : requests) {
          tokens.emplace_back();
          tokens.back().SetDeadlineAfter(deadline_ms * 1'000'000);
          request.cancel = &tokens.back();
        }
      }
      auto results = sharded ? sharded->SuggestBatch(requests, 10)
                             : engine->SuggestBatch(requests, 10);
      for (size_t r = 0; r < results.size(); ++r) {
        std::printf("[%zu] %s\n", r + 1, requests[r].query.c_str());
        if (!results[r].ok()) {
          std::printf("  (%s)\n", results[r].status().ToString().c_str());
          continue;
        }
        for (size_t i = 0; i < results[r]->size(); ++i) {
          std::printf("  %2zu. %s\n", i + 1, (*results[r])[i].query.c_str());
        }
      }
      continue;
    }

    SuggestionRequest request = ParseRequest(line);
    if (request.query.empty()) continue;
    CancelToken token;
    if (deadline_ms > 0) {
      token.SetDeadlineAfter(deadline_ms * 1'000'000);
      request.cancel = &token;
    }

    // Snapshot-diff the registry around the request so --stats reports what
    // *this* request recorded, not the session's cumulative totals.
    obs::MetricsSnapshot before;
    if (show_stats) before = obs::MetricsRegistry::Default().Snapshot();
    SuggestStats stats;
    auto suggestions =
        sharded ? sharded->Suggest(request, 10, show_stats ? &stats : nullptr)
                : engine->Suggest(request, 10, show_stats ? &stats : nullptr);
    if (!suggestions.ok()) {
      std::printf("  (%s)\n", suggestions.status().ToString().c_str());
      continue;
    }
    for (size_t i = 0; i < suggestions->size(); ++i) {
      std::printf("  %2zu. %s\n", i + 1, (*suggestions)[i].query.c_str());
    }
    if (show_stats) {
      obs::MetricsSnapshot after = obs::MetricsRegistry::Default().Snapshot();
      std::printf("\n%s", stats.Render().c_str());
      std::printf("request delta: %s\n",
                  obs::MetricsRegistry::DeltaJson(before, after).c_str());
    }
  }
  if (tail_thread.joinable()) {
    tail_stop.store(true, std::memory_order_relaxed);
    tail_thread.join();
  }
  return 0;
}
